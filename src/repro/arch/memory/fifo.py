"""Stationary-matrix FIFO (Section 3.4, "Memory structure for the stationary matrix").

The stationary matrix is read exactly once and strictly sequentially in all
three dataflows, so Flexagon backs it with a small read-only FIFO rather than
a cache.  The tile filler pushes elements fetched from DRAM; the tile reader
pops them towards the Distribution Network.  The model below tracks occupancy
and counts, and lets the accelerator models account for the DRAM fill traffic
and the (rare) stalls when the reader outpaces the filler.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass


@dataclass
class FifoStats:
    """Counters of FIFO activity."""

    pushes: int = 0
    pops: int = 0
    stall_events: int = 0
    peak_occupancy: int = 0


class StationaryFifo:
    """A bounded read-once FIFO holding stationary-matrix elements.

    Parameters
    ----------
    capacity_elements:
        Maximum number of elements resident at once (256 bytes / 4 B per
        element = 64 elements in the Table 5 configuration).
    """

    def __init__(self, capacity_elements: int) -> None:
        if capacity_elements < 1:
            raise ValueError("FIFO capacity must be positive")
        self.capacity = int(capacity_elements)
        self._queue: deque = deque()
        self.stats = FifoStats()
        #: DRAM byte address register of the stationary matrix; the hardware
        #: keeps this in a register so fibers are pushed implicitly.
        self.base_address: int = 0

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._queue)

    @property
    def occupancy(self) -> int:
        """Number of elements currently buffered."""
        return len(self._queue)

    @property
    def free_slots(self) -> int:
        """Remaining capacity in elements."""
        return self.capacity - len(self._queue)

    def is_full(self) -> bool:
        """True when no more elements can be pushed."""
        return len(self._queue) >= self.capacity

    def is_empty(self) -> bool:
        """True when there is nothing to pop."""
        return not self._queue

    # ------------------------------------------------------------------
    def set_base_address(self, address: int) -> None:
        """Latch the DRAM location of the stationary matrix."""
        self.base_address = int(address)

    def push(self, element) -> None:
        """Insert one element arriving from DRAM.

        Raises ``OverflowError`` when the FIFO is full — the tile filler must
        throttle, which the accelerator model treats as back-pressure on the
        DRAM stream rather than lost data.
        """
        if self.is_full():
            raise OverflowError("stationary FIFO overflow; filler must throttle")
        self._queue.append(element)
        self.stats.pushes += 1
        self.stats.peak_occupancy = max(self.stats.peak_occupancy, len(self._queue))

    def pop(self):
        """Remove and return the oldest element (towards the multipliers)."""
        if self.is_empty():
            self.stats.stall_events += 1
            raise LookupError("stationary FIFO underflow; reader must stall")
        self.stats.pops += 1
        return self._queue.popleft()

    def push_fiber(self, fiber) -> int:
        """Push as many elements of ``fiber`` as fit; return how many were pushed."""
        pushed = 0
        for element in fiber:
            if self.is_full():
                break
            self.push(element)
            pushed += 1
        return pushed

    def drain(self) -> list:
        """Pop everything currently buffered (used between tiles)."""
        out = []
        while not self.is_empty():
            out.append(self.pop())
        return out
