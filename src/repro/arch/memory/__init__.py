"""The L1 memory organisation of Flexagon (Section 3.4, Fig. 9).

Three customised structures, each matched to the access pattern of one
operand class:

* :class:`~repro.arch.memory.fifo.StationaryFifo` — sequential, read-once
  accesses of the stationary matrix.
* :class:`~repro.arch.memory.cache.StreamingCache` — a read-only
  set-associative cache absorbing the (potentially irregular) accesses of the
  streaming matrix.
* :class:`~repro.arch.memory.psram.Psram` — the way-combining, k-tagged
  partial-sum store with ``PartialWrite``/``Consume`` semantics.
* :class:`~repro.arch.memory.write_buffer.WriteBuffer` — the output FIFO that
  hides DRAM write latency.
* :class:`~repro.arch.memory.dram.DramModel` — the off-chip HBM model that
  every structure ultimately fills from / drains to.
"""

from repro.arch.memory.dram import DramModel, DramTrafficCounter
from repro.arch.memory.fifo import StationaryFifo
from repro.arch.memory.cache import CacheStats, StreamingCache
from repro.arch.memory.psram import Psram, PsramStats
from repro.arch.memory.write_buffer import WriteBuffer

__all__ = [
    "DramModel",
    "DramTrafficCounter",
    "StationaryFifo",
    "StreamingCache",
    "CacheStats",
    "Psram",
    "PsramStats",
    "WriteBuffer",
]
