"""Off-chip DRAM model.

The paper attaches the accelerator to an HBM 2.0 DRAM simulated with SST; the
quantities its evaluation actually uses are the off-chip traffic volume
(Fig. 16) and the time the memory-bound phases spend waiting for DRAM
bandwidth/latency.  :class:`DramModel` therefore tracks bytes read and written
per logical stream and converts them into cycle costs with a simple
latency + bandwidth model, which is what determines the memory-bound phase
durations in the accelerator models.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.arch.config import DramConfig


@dataclass
class DramTrafficCounter:
    """Bytes moved to/from DRAM, broken down by logical stream."""

    #: Bytes read to fill the stationary-matrix FIFO.
    sta_read_bytes: int = 0
    #: Bytes read to fill the streaming-matrix cache (its miss traffic).
    str_read_bytes: int = 0
    #: Bytes of final output written to DRAM.
    output_write_bytes: int = 0
    #: Bytes of partial sums spilled to DRAM (only when the PSRAM overflows).
    psum_spill_bytes: int = 0

    @property
    def total_read_bytes(self) -> int:
        """All bytes read from DRAM."""
        return self.sta_read_bytes + self.str_read_bytes

    @property
    def total_write_bytes(self) -> int:
        """All bytes written to DRAM."""
        return self.output_write_bytes + self.psum_spill_bytes

    @property
    def total_bytes(self) -> int:
        """Total off-chip traffic (the quantity of Fig. 16)."""
        return self.total_read_bytes + self.total_write_bytes

    def merged_with(self, other: "DramTrafficCounter") -> "DramTrafficCounter":
        """Element-wise sum of two counters."""
        return DramTrafficCounter(
            sta_read_bytes=self.sta_read_bytes + other.sta_read_bytes,
            str_read_bytes=self.str_read_bytes + other.str_read_bytes,
            output_write_bytes=self.output_write_bytes + other.output_write_bytes,
            psum_spill_bytes=self.psum_spill_bytes + other.psum_spill_bytes,
        )


@dataclass
class DramModel:
    """Latency + bandwidth cost model for the off-chip memory."""

    config: DramConfig = field(default_factory=DramConfig)
    frequency_hz: float = 800e6
    traffic: DramTrafficCounter = field(default_factory=DramTrafficCounter)
    #: Number of individual requests issued (each pays the access latency once,
    #: but requests to a streaming interface are pipelined so only a fraction
    #: is exposed; see :meth:`cycles_for`).
    requests: int = 0

    # ------------------------------------------------------------------
    # Recording traffic
    # ------------------------------------------------------------------
    def read_stationary(self, nbytes: int) -> None:
        """Record ``nbytes`` read from DRAM into the stationary FIFO."""
        self._record(nbytes)
        self.traffic.sta_read_bytes += int(nbytes)

    def read_streaming(self, nbytes: int) -> None:
        """Record ``nbytes`` of streaming-cache miss traffic."""
        self._record(nbytes)
        self.traffic.str_read_bytes += int(nbytes)

    def write_output(self, nbytes: int) -> None:
        """Record ``nbytes`` of final output written back."""
        self._record(nbytes)
        self.traffic.output_write_bytes += int(nbytes)

    def spill_psums(self, nbytes: int) -> None:
        """Record ``nbytes`` of partial sums spilled off chip."""
        self._record(nbytes)
        self.traffic.psum_spill_bytes += int(nbytes)

    def _record(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ValueError("traffic must be non-negative")
        if nbytes:
            self.requests += 1

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    @property
    def latency_cycles(self) -> int:
        """Access latency of one request in core cycles."""
        return int(round(self.config.access_time_ns * 1e-9 * self.frequency_hz))

    @property
    def bytes_per_cycle(self) -> float:
        """Sustained DRAM bandwidth per core cycle."""
        return self.config.bandwidth_bytes_per_s / self.frequency_hz

    def cycles_for(self, nbytes: int, *, streamed: bool = True) -> float:
        """Cycles needed to transfer ``nbytes``.

        ``streamed`` requests overlap their latency with the transfer of the
        previous request (the tile fillers prefetch ahead), so only one
        latency is exposed; non-streamed (pointer-chasing) requests pay the
        latency per request.
        """
        if nbytes <= 0:
            return 0.0
        transfer = nbytes / self.bytes_per_cycle
        if streamed:
            return self.latency_cycles + transfer
        return self.latency_cycles + transfer

    def total_transfer_cycles(self) -> float:
        """Bandwidth-limited cycles for all recorded traffic (no overlap)."""
        return self.cycles_for(self.traffic.total_bytes)
