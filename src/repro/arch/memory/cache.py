"""Streaming-matrix cache (Section 3.4, "Memory structure for the streaming matrix").

The streaming matrix has the most heterogeneous access pattern of the three
operands: IP re-streams the whole matrix once per stationary batch, OP reads
every fiber exactly once and sequentially, and Gustavson gathers fibers in an
irregular, data-dependent order.  To absorb the worst case the paper backs the
streaming operand with a read-only set-associative cache that operates on a
*virtual address space relative to the beginning of the streaming matrix*
(shorter tags, less bandwidth).

The class below is an exact behavioural model: every element access is mapped
to a relative line address, looked up in the proper set, and either hits or
misses (allocating with LRU replacement).  The resulting miss count is what
produces the Fig. 15 miss rates and the Fig. 16 off-chip traffic.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass
class CacheStats:
    """Hit/miss counters for the streaming cache."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    #: Bytes fetched from DRAM on misses.  Updated by whoever produces the
    #: miss counts: :meth:`StreamingCache.access_byte` for walked accesses,
    #: and the engine's closed-form Inner Product pass, which accounts its
    #: analytically-derived misses directly.
    miss_bytes: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of accesses that missed (0 when there were no accesses)."""
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit."""
        return 1.0 - self.miss_rate if self.accesses else 0.0


class StreamingCache:
    """Read-only set-associative cache with LRU replacement.

    Parameters
    ----------
    capacity_bytes:
        Total data capacity.
    line_bytes:
        Cache line (block) size in bytes.
    associativity:
        Ways per set.
    banks:
        Number of banks (does not change hit/miss behaviour, but bounds how
        many concurrent reads per cycle the accelerator model may assume).
    element_bytes:
        Size of one matrix element, used by :meth:`access_element`.
    """

    def __init__(
        self,
        capacity_bytes: int,
        line_bytes: int,
        associativity: int,
        banks: int = 1,
        element_bytes: int = 4,
    ) -> None:
        if capacity_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry parameters must be positive")
        if capacity_bytes % line_bytes:
            raise ValueError("capacity must be a multiple of the line size")
        num_lines = capacity_bytes // line_bytes
        if num_lines % associativity:
            raise ValueError("number of lines must be a multiple of the associativity")
        self.capacity_bytes = capacity_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.banks = banks
        self.element_bytes = element_bytes
        self.num_sets = num_lines // associativity
        # Each set is an OrderedDict of line_tag -> None, most recent last.
        self._sets: list[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.num_sets * self.associativity

    @property
    def elements_per_line(self) -> int:
        """Matrix elements per cache line."""
        return self.line_bytes // self.element_bytes

    # ------------------------------------------------------------------
    def access_element(self, element_offset: int) -> bool:
        """Access the element at ``element_offset`` within the streaming matrix.

        The offset is *relative to the start of the streaming matrix* (the
        virtual address space of the paper).  Returns True on a hit.
        """
        return self.access_byte(element_offset * self.element_bytes)

    def access_byte(self, byte_offset: int) -> bool:
        """Access one byte address (relative).  Returns True on a hit."""
        if byte_offset < 0:
            raise ValueError("byte offset must be non-negative")
        line_addr = byte_offset // self.line_bytes
        set_index = line_addr % self.num_sets
        ways = self._sets[set_index]
        self.stats.accesses += 1
        if line_addr in ways:
            ways.move_to_end(line_addr)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        self.stats.miss_bytes += self.line_bytes
        ways[line_addr] = None
        if len(ways) > self.associativity:
            ways.popitem(last=False)
        return False

    def access_range(self, start_element: int, num_elements: int) -> int:
        """Access ``num_elements`` consecutive elements; return the number of misses."""
        misses = 0
        for i in range(num_elements):
            if not self.access_element(start_element + i):
                misses += 1
        return misses

    def contains_line_of(self, element_offset: int) -> bool:
        """True when the line holding ``element_offset`` is resident (no side effects)."""
        line_addr = (element_offset * self.element_bytes) // self.line_bytes
        return line_addr in self._sets[line_addr % self.num_sets]

    def invalidate(self) -> None:
        """Drop all resident lines (used when the streaming operand changes)."""
        for ways in self._sets:
            ways.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters, keeping the resident lines."""
        self.stats = CacheStats()

    # ------------------------------------------------------------------
    @property
    def miss_traffic_bytes(self) -> int:
        """Bytes fetched from DRAM: one full line per miss."""
        return self.stats.misses * self.line_bytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"StreamingCache({self.capacity_bytes}B, line={self.line_bytes}B, "
            f"{self.associativity}-way, sets={self.num_sets})"
        )
