"""Merger-Reduction Network (MRN): the paper's central architectural novelty.

The MRN (Section 3.1, Fig. 4a/4b) is an augmented binary tree whose nodes can
be configured either as **adders** (reducing clusters of products into full
sums, the job of SIGMA's FAN in the IP dataflow) or as **comparators**
(merging coordinate-sorted partial-sum fibers, the job of the merger trees in
SpArch / GAMMA for the OP and Gust dataflows).  Nodes carry both a value and
a coordinate on their links so merged elements keep their output coordinate.

This module provides two levels of modelling:

* :class:`MergerReductionNetwork` — a tick-level micro-simulator in which
  every node holds small input queues and performs at most one operation per
  cycle.  It produces exact output streams and cycle counts for small
  configurations, and is what the unit tests validate the analytical model
  against.
* :func:`reduction_cycles` / :func:`merge_cycles` — closed-form cycle
  estimates (pipelined tree throughput limited by the configured bandwidth)
  used by the accelerator-level cycle accounting for large workloads.
"""

from __future__ import annotations

import enum
import math
from collections import deque
from dataclasses import dataclass

from repro.sparse.fiber import Element, Fiber


class NodeMode(enum.Enum):
    """Configuration of one MRN node."""

    ADDER = "adder"
    COMPARATOR = "comparator"
    IDLE = "idle"


@dataclass
class MrnStats:
    """Work counters accumulated by the tree."""

    additions: int = 0
    comparisons: int = 0
    elements_out: int = 0
    cycles: int = 0


class _Node:
    """One adder/comparator node with bounded input queues."""

    __slots__ = ("index", "mode", "left", "right", "out", "left_done", "right_done")

    def __init__(self, index: int) -> None:
        self.index = index
        self.mode = NodeMode.IDLE
        self.left: deque = deque()
        self.right: deque = deque()
        self.out: deque = deque()
        self.left_done = False
        self.right_done = False


class MergerReductionNetwork:
    """Tick-level model of an N-leaf MRN (N must be a power of two)."""

    def __init__(self, num_leaves: int, queue_depth: int = 2) -> None:
        if num_leaves < 2 or num_leaves & (num_leaves - 1):
            raise ValueError("the MRN needs a power-of-two number of leaves >= 2")
        self.num_leaves = num_leaves
        self.queue_depth = queue_depth
        self.levels = int(math.log2(num_leaves))
        # nodes[level][i]: level 0 is adjacent to the leaves, the last level is the root.
        self.nodes: list[list[_Node]] = []
        width = num_leaves // 2
        index = 0
        for _ in range(self.levels):
            self.nodes.append([_Node(index + i) for i in range(width)])
            index += width
            width //= 2
        self.stats = MrnStats()

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total adder/comparator nodes (``num_leaves - 1``)."""
        return self.num_leaves - 1

    def configure(self, mode: NodeMode) -> None:
        """Put every node in the same mode (how the control logic configures phases)."""
        for level in self.nodes:
            for node in level:
                node.mode = mode

    def _reset_queues(self) -> None:
        for level in self.nodes:
            for node in level:
                node.left.clear()
                node.right.clear()
                node.out.clear()
                node.left_done = False
                node.right_done = False

    # ------------------------------------------------------------------
    # Merge micro-simulation (comparator mode)
    # ------------------------------------------------------------------
    def merge(self, fibers: list[Fiber]) -> tuple[Fiber, int]:
        """Merge up to ``num_leaves`` coordinate-sorted fibers.

        Returns ``(merged_fiber, cycles)``.  Models a pipelined comparator
        tree: each node emits at most one element per cycle, so the total
        cycle count is roughly the output length plus the pipeline depth,
        which is what the closed-form :func:`merge_cycles` assumes.
        """
        if len(fibers) > self.num_leaves:
            raise ValueError(
                f"cannot merge {len(fibers)} fibers on a {self.num_leaves}-leaf tree"
            )
        self.configure(NodeMode.COMPARATOR)
        self._reset_queues()
        leaf_streams: list[deque] = [deque(f) for f in fibers]
        leaf_streams.extend(deque() for _ in range(self.num_leaves - len(fibers)))
        leaf_done = [False] * self.num_leaves
        output: list[Element] = []
        cycles = 0
        max_cycles = 4 * (sum(len(f) for f in fibers) + self.levels + 2) + 16

        while True:
            progressed = self._tick_merge(leaf_streams, leaf_done, output)
            cycles += 1
            if self._drained(leaf_streams):
                break
            if cycles > max_cycles:  # pragma: no cover - safety net
                raise RuntimeError("MRN merge did not converge; model bug")
            if not progressed and self._idle():
                break
        merged = Fiber()
        merged._elements = _accumulate(output)
        self.stats.cycles += cycles
        self.stats.elements_out += len(merged)
        return merged, cycles

    def _tick_merge(
        self, leaf_streams: list[deque], leaf_done: list[bool], output: list[Element]
    ) -> bool:
        progressed = False
        # Root first (so downstream space frees up within the same tick order),
        # then towards the leaves; finally feed the leaves.
        for level in range(self.levels - 1, -1, -1):
            for node in self.nodes[level]:
                progressed |= self._node_step(node, level, output)
        # Leaf injection: level-0 node i takes leaves 2i (left) and 2i+1 (right).
        for i, node in enumerate(self.nodes[0]):
            for side, leaf in (("left", 2 * i), ("right", 2 * i + 1)):
                queue = getattr(node, side)
                stream = leaf_streams[leaf]
                if stream and len(queue) < self.queue_depth:
                    queue.append(stream.popleft())
                    progressed = True
                if not stream:
                    setattr(node, f"{side}_done", True)
        return progressed

    def _node_step(self, node: _Node, level: int, output: list[Element]) -> bool:
        # Where does this node's output go?
        if level == self.levels - 1:
            sink_append = output.append
            sink_has_room = True
        else:
            parent = self.nodes[level + 1][_parent_index(node, self.nodes[level])]
            side = "left" if _child_side(node, self.nodes[level]) == 0 else "right"
            queue = getattr(parent, side)
            sink_has_room = len(queue) < self.queue_depth
            sink_append = queue.append
        if not sink_has_room:
            return False

        left, right = node.left, node.right
        if left and right:
            self.stats.comparisons += 1
            a, b = left[0], right[0]
            if a.coord == b.coord:
                left.popleft()
                right.popleft()
                self.stats.additions += 1
                sink_append(Element(a.coord, a.value + b.value))
            elif a.coord < b.coord:
                sink_append(left.popleft())
            else:
                sink_append(right.popleft())
            self._propagate_done(node, level)
            return True
        if left and node.right_done:
            sink_append(left.popleft())
            self._propagate_done(node, level)
            return True
        if right and node.left_done:
            sink_append(right.popleft())
            self._propagate_done(node, level)
            return True
        self._propagate_done(node, level)
        return False

    def _propagate_done(self, node: _Node, level: int) -> None:
        if (
            node.left_done
            and node.right_done
            and not node.left
            and not node.right
            and level < self.levels - 1
        ):
            parent = self.nodes[level + 1][_parent_index(node, self.nodes[level])]
            if _child_side(node, self.nodes[level]) == 0:
                parent.left_done = True
            else:
                parent.right_done = True

    def _drained(self, leaf_streams: list[deque]) -> bool:
        if any(leaf_streams):
            return False
        return self._idle()

    def _idle(self) -> bool:
        return all(
            not node.left and not node.right for level in self.nodes for node in level
        )

    # ------------------------------------------------------------------
    # Reduction micro-simulation (adder mode)
    # ------------------------------------------------------------------
    def reduce(self, values: list[float]) -> tuple[float, int]:
        """Reduce up to ``num_leaves`` products into one sum.

        Returns ``(sum, cycles)`` where cycles is the pipeline depth actually
        exercised (log2 of the occupied leaves), matching FAN behaviour for a
        single cluster spanning the whole tree.
        """
        if len(values) > self.num_leaves:
            raise ValueError(
                f"cannot reduce {len(values)} values on a {self.num_leaves}-leaf tree"
            )
        self.configure(NodeMode.ADDER)
        if not values:
            return 0.0, 0
        total = 0.0
        for v in values:
            total += v
        self.stats.additions += max(0, len(values) - 1)
        cycles = max(1, math.ceil(math.log2(max(2, len(values)))))
        self.stats.cycles += cycles
        return total, cycles

    def reduce_clusters(self, clusters: list[list[float]]) -> tuple[list[float], int]:
        """Reduce several independent clusters mapped onto disjoint leaf groups.

        All clusters reduce in parallel (the FAN/ART-style flexibility SIGMA
        relies on); the cycle cost is the depth of the largest cluster.
        """
        if sum(len(c) for c in clusters) > self.num_leaves:
            raise ValueError("clusters do not fit in the tree leaves")
        sums: list[float] = []
        worst = 0
        for cluster in clusters:
            value, cycles = self.reduce(cluster)
            # reduce() already charged per-cluster cycles; parallel clusters
            # overlap, so undo the serial accumulation and charge the max below.
            self.stats.cycles -= cycles
            worst = max(worst, cycles)
            sums.append(value)
        self.stats.cycles += worst
        return sums, worst


# ----------------------------------------------------------------------
# Closed-form cycle estimates used by the accelerator-level models
# ----------------------------------------------------------------------
def reduction_cycles(num_products: int, bandwidth: int, tree_depth: int) -> float:
    """Cycles for a pipelined tree to reduce ``num_products`` products.

    The tree accepts ``bandwidth`` elements per cycle, so throughput-bound
    time is ``num_products / bandwidth`` plus the pipeline fill of
    ``tree_depth`` cycles.
    """
    if num_products <= 0:
        return 0.0
    return num_products / max(1, bandwidth) + tree_depth


def merge_cycles(total_input_elements: int, bandwidth: int, tree_depth: int) -> float:
    """Cycles for a pipelined comparator tree to merge sorted streams.

    Every input element passes the root exactly once (possibly combined), so
    the throughput bound is the total number of input elements divided by the
    accepted bandwidth, plus the pipeline fill.
    """
    if total_input_elements <= 0:
        return 0.0
    return total_input_elements / max(1, bandwidth) + tree_depth


# ----------------------------------------------------------------------
# Helpers
# ----------------------------------------------------------------------
def _parent_index(node: _Node, level_nodes: list[_Node]) -> int:
    return level_nodes.index(node) // 2


def _child_side(node: _Node, level_nodes: list[_Node]) -> int:
    return level_nodes.index(node) % 2


def _accumulate(elements: list[Element]) -> list[Element]:
    """Combine adjacent equal coordinates in the root's output stream.

    Elements with the same output coordinate can arrive at the root in
    consecutive cycles when they travelled through different subtrees; the
    final accumulation the hardware performs at the root/collector is folded
    in here.
    """
    out: list[Element] = []
    for element in elements:
        if out and out[-1].coord == element.coord:
            out[-1] = Element(element.coord, out[-1].value + element.value)
        else:
            out.append(element)
    return out
