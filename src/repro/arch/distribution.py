"""Distribution Network (DN): delivers operands from the L1 SRAMs to the multipliers.

Flexagon uses a Benes topology (as SIGMA does) so that any mix of unicast,
multicast and broadcast deliveries can be routed without blocking.  For the
purposes of cycle accounting the relevant properties are:

* the network is non-blocking, so delivery order never adds stalls, and
* it accepts at most ``bandwidth`` elements per cycle (16 in Table 5).

The model therefore tracks how many elements were delivered in each mode and
converts element counts into cycles with the bandwidth bound; it also reports
the structural parameters of the Benes topology (levels, switch count) that
the area/power model uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass
class DistributionStats:
    """Delivery counters for the distribution network."""

    unicasts: int = 0
    multicasts: int = 0
    broadcasts: int = 0
    elements_delivered: int = 0
    cycles: float = 0.0


class DistributionNetwork:
    """Bandwidth-bounded model of the Benes distribution network."""

    def __init__(self, num_outputs: int, bandwidth: int) -> None:
        if num_outputs < 1:
            raise ValueError("the distribution network needs at least one output")
        if bandwidth < 1:
            raise ValueError("bandwidth must be positive")
        self.num_outputs = num_outputs
        self.bandwidth = bandwidth
        self.stats = DistributionStats()

    # ------------------------------------------------------------------
    # Structural properties (used by the area model)
    # ------------------------------------------------------------------
    @property
    def levels(self) -> int:
        """Benes network depth: ``2*log2(N) + 1`` levels of 2x2 switches."""
        n = max(2, self.num_outputs)
        return 2 * int(math.ceil(math.log2(n))) + 1

    @property
    def num_switches(self) -> int:
        """Total number of tiny 2x2 switches in the Benes topology."""
        n = max(2, self.num_outputs)
        return self.levels * (n // 2)

    # ------------------------------------------------------------------
    # Delivery accounting
    # ------------------------------------------------------------------
    def deliver(self, num_elements: int, *, destinations: int = 1) -> float:
        """Account for delivering ``num_elements`` elements to ``destinations`` multipliers.

        A multicast occupies the network once per source element regardless of
        fan-out (the Benes tree replicates in the switches), so the cycle cost
        depends only on the element count and the injection bandwidth.
        Returns the cycles consumed.
        """
        if num_elements < 0 or destinations < 0:
            raise ValueError("element and destination counts must be non-negative")
        if num_elements == 0 or destinations == 0:
            return 0.0
        if destinations == 1:
            self.stats.unicasts += num_elements
        elif destinations >= self.num_outputs:
            self.stats.broadcasts += num_elements
        else:
            self.stats.multicasts += num_elements
        self.stats.elements_delivered += num_elements
        cycles = num_elements / self.bandwidth
        self.stats.cycles += cycles
        return cycles

    def cycles_for(self, num_elements: int) -> float:
        """Cycle cost of injecting ``num_elements`` without recording them."""
        return num_elements / self.bandwidth if num_elements > 0 else 0.0
