"""Accelerator configuration: the parameters of Table 5.

A single :class:`AcceleratorConfig` instance describes one hardware design
point and is shared by Flexagon and the three fixed-dataflow baselines (the
paper models all four with the same sizing and only changes the reduction /
merge network and the memory controllers).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace


@dataclass(frozen=True)
class DramConfig:
    """Off-chip memory parameters (HBM 2.0 in the paper)."""

    #: Total capacity in bytes (16 GiB in Table 5).
    size_bytes: int = 16 * 1024**3
    #: Access latency in nanoseconds.
    access_time_ns: float = 100.0
    #: Sustained bandwidth in bytes per second (256 GB/s in Table 5).
    bandwidth_bytes_per_s: float = 256e9


@dataclass(frozen=True)
class AcceleratorConfig:
    """One Flexagon-style design point (defaults reproduce Table 5)."""

    #: Number of multiplier switches in the Multiplier Network.
    num_multipliers: int = 64
    #: Number of adder/comparator nodes in the MRN (a binary tree over the
    #: multipliers has ``num_multipliers - 1`` internal nodes).
    num_adders: int = 63
    #: Elements per cycle the Distribution Network can deliver.
    distribution_bandwidth: int = 16
    #: Elements per cycle the MRN can accept / emit.
    reduction_bandwidth: int = 16
    #: Bits per on-chip word (value + coordinate packed together).
    word_bits: int = 32
    #: L1 access latency in cycles.
    l1_latency_cycles: int = 1
    #: Stationary-matrix FIFO capacity in bytes.
    sta_fifo_bytes: int = 256
    #: Streaming-matrix cache capacity in bytes (1 MiB in Table 5).
    str_cache_bytes: int = 1 * 1024**2
    #: Streaming-matrix cache line size in bytes.
    str_cache_line_bytes: int = 128
    #: Streaming-matrix cache associativity.
    str_cache_associativity: int = 16
    #: Streaming-matrix cache banks.
    str_cache_banks: int = 16
    #: PSRAM capacity in bytes (256 KiB in Table 5).
    psram_bytes: int = 256 * 1024
    #: PSRAM block (line) size in bytes.
    psram_block_bytes: int = 128
    #: PSRAM banks (parallel fiber reads during merging).
    psram_banks: int = 16
    #: Output write-buffer FIFO capacity in bytes.
    write_buffer_bytes: int = 512
    #: Outstanding-miss capacity of the streaming-cache / DRAM interface.
    #: Sequential streams are fully prefetched, but the irregular, on-demand
    #: fiber gathers of the Gustavson dataflow expose a fraction of the DRAM
    #: latency: ``dram_latency_cycles / dram_outstanding_misses`` per miss.
    dram_outstanding_misses: int = 8
    #: Clock frequency in Hz (800 MHz, Section 4).
    frequency_hz: float = 800e6
    #: Off-chip DRAM parameters.
    dram: DramConfig = field(default_factory=DramConfig)

    def __post_init__(self) -> None:
        if self.num_multipliers < 1:
            raise ValueError("num_multipliers must be positive")
        if self.num_adders != self.num_multipliers - 1:
            raise ValueError(
                "a binary merge/reduce tree over N multipliers has N-1 nodes; "
                f"got num_multipliers={self.num_multipliers}, num_adders={self.num_adders}"
            )
        if self.distribution_bandwidth < 1 or self.reduction_bandwidth < 1:
            raise ValueError("network bandwidths must be positive")
        if self.str_cache_bytes % self.str_cache_line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        num_lines = self.str_cache_bytes // self.str_cache_line_bytes
        if num_lines % self.str_cache_associativity:
            raise ValueError("cache lines must divide evenly into associative sets")
        if self.psram_bytes % self.psram_block_bytes:
            raise ValueError("PSRAM size must be a multiple of the block size")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def element_bytes(self) -> int:
        """Bytes per on-chip element (value + coordinate packed word)."""
        return self.word_bits // 8

    @property
    def str_cache_sets(self) -> int:
        """Number of sets in the streaming cache."""
        return (self.str_cache_bytes // self.str_cache_line_bytes) // self.str_cache_associativity

    @property
    def str_cache_elements_per_line(self) -> int:
        """Elements that fit in one streaming-cache line."""
        return self.str_cache_line_bytes // self.element_bytes

    @property
    def psram_blocks(self) -> int:
        """Total number of PSRAM blocks."""
        return self.psram_bytes // self.psram_block_bytes

    @property
    def psram_elements_per_block(self) -> int:
        """Elements that fit in one PSRAM block."""
        return self.psram_block_bytes // self.element_bytes

    @property
    def sta_fifo_elements(self) -> int:
        """Elements that fit in the stationary FIFO."""
        return self.sta_fifo_bytes // self.element_bytes

    @property
    def dram_latency_cycles(self) -> int:
        """DRAM access latency expressed in core cycles."""
        return int(round(self.dram.access_time_ns * 1e-9 * self.frequency_hz))

    @property
    def dram_bytes_per_cycle(self) -> float:
        """DRAM bandwidth expressed in bytes per core cycle."""
        return self.dram.bandwidth_bytes_per_s / self.frequency_hz

    @property
    def exposed_miss_latency_cycles(self) -> float:
        """Average stall cycles one irregular cache miss exposes to the datapath."""
        return self.dram_latency_cycles / max(1, self.dram_outstanding_misses)

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert a cycle count into wall-clock seconds at the configured clock."""
        return cycles / self.frequency_hz

    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form (used by the :mod:`repro.api` response records)."""
        return asdict(self)

    @classmethod
    def from_record(cls, record: dict) -> "AcceleratorConfig":
        """Inverse of :meth:`to_record`."""
        fields = dict(record)
        dram = fields.pop("dram")
        return cls(dram=DramConfig(**dram), **fields)

    def scaled(self, factor: float) -> "AcceleratorConfig":
        """Return a copy with the on-chip SRAM capacities scaled by ``factor``.

        Used by the benchmark harness: when layer dimensions are scaled down
        to keep the pure-Python simulation tractable, the caches are scaled by
        the same factor so the working-set-to-capacity ratios (and therefore
        miss rates and traffic trends) are preserved.
        """
        if factor <= 0:
            raise ValueError("scale factor must be positive")

        def scale_pow2(value: int, minimum: int) -> int:
            target = max(minimum, int(value * factor))
            power = 1
            while power * 2 <= target:
                power *= 2
            return power

        line = self.str_cache_line_bytes
        assoc = self.str_cache_associativity
        cache = max(line * assoc, scale_pow2(self.str_cache_bytes, line * assoc))
        psram = max(self.psram_block_bytes * self.psram_banks,
                    scale_pow2(self.psram_bytes, self.psram_block_bytes))
        return replace(self, str_cache_bytes=cache, psram_bytes=psram)


def default_config(**overrides) -> AcceleratorConfig:
    """The Table 5 configuration, optionally overridden field by field."""
    config = AcceleratorConfig()
    if "num_multipliers" in overrides and "num_adders" not in overrides:
        overrides["num_adders"] = overrides["num_multipliers"] - 1
    return replace(config, **overrides) if overrides else config
