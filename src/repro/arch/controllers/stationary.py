"""Tile filler / tile reader for the stationary operand (STA in Fig. 11).

The stationary operand is read sequentially, fiber by fiber, and mapped onto
the multiplier array.  What differs between dataflows is the *granularity* of
the stationary unit:

* **IP** — whole fibers (rows of A) are packed into the array; a fiber longer
  than the array is split into chunks that occupy the array alone.
* **OP** — individual scalars (elements of A walked column-by-column) are
  packed, ``num_multipliers`` at a time.
* **Gust** — individual scalars of one row at a time are packed, so a batch
  never mixes output rows (each batch produces psums for a single row).

The reader exposes these as :class:`StationaryBatch` objects; the accelerator
engine charges the DRAM fill traffic and the distribution cycles per batch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.dataflows.base import Dataflow, DataflowClass
from repro.sparse.fiber import Fiber
from repro.sparse.formats import CompressedMatrix


@dataclass
class StationaryBatch:
    """One multiplier-array load of stationary data.

    Attributes
    ----------
    entries:
        A list of ``(major_index, fiber)`` pairs.  For IP the fiber is the
        (possibly chunked) stationary row; for OP/Gust each fiber holds the
        individual scalars mapped to consecutive multipliers, where the fiber
        coordinate is the K index of the scalar.
    num_elements:
        Total stationary elements occupying multipliers in this batch.
    """

    entries: list[tuple[int, Fiber]] = field(default_factory=list)
    num_elements: int = 0

    def majors(self) -> list[int]:
        """The distinct major (row for M-stationary) indices present."""
        seen: list[int] = []
        for major, _ in self.entries:
            if major not in seen:
                seen.append(major)
        return seen


class StationaryTileReader:
    """Generates the sequence of stationary batches for one layer execution."""

    def __init__(
        self,
        dataflow: Dataflow,
        stationary_matrix: CompressedMatrix,
        num_multipliers: int,
    ) -> None:
        if num_multipliers < 1:
            raise ValueError("num_multipliers must be positive")
        self.dataflow = dataflow
        self.matrix = stationary_matrix
        self.num_multipliers = num_multipliers
        #: Total elements read from the stationary structure over all batches.
        self.elements_read = 0
        #: Number of batches generated so far.
        self.batches_generated = 0

    # ------------------------------------------------------------------
    def batches(self) -> Iterator[StationaryBatch]:
        """Yield the stationary batches in execution order."""
        cls = self.dataflow.dataflow_class
        if cls is DataflowClass.INNER_PRODUCT:
            yield from self._inner_product_batches()
        elif cls is DataflowClass.OUTER_PRODUCT:
            yield from self._outer_product_batches()
        else:
            yield from self._gustavson_batches()

    # ------------------------------------------------------------------
    def _emit(self, batch: StationaryBatch) -> StationaryBatch:
        self.elements_read += batch.num_elements
        self.batches_generated += 1
        return batch

    def _inner_product_batches(self) -> Iterator[StationaryBatch]:
        """Pack whole stationary fibers; split fibers longer than the array."""
        current = StationaryBatch()
        for major in range(self.matrix.major_dim):
            nnz = self.matrix.fiber_nnz(major)
            if nnz == 0:
                continue
            if nnz > self.num_multipliers:
                if current.entries:
                    yield self._emit(current)
                    current = StationaryBatch()
                elements = list(self.matrix.fiber(major))
                for start in range(0, len(elements), self.num_multipliers):
                    chunk = Fiber(
                        (e.coord, e.value)
                        for e in elements[start : start + self.num_multipliers]
                    )
                    yield self._emit(
                        StationaryBatch(entries=[(major, chunk)], num_elements=chunk.nnz)
                    )
                continue
            if current.num_elements + nnz > self.num_multipliers and current.entries:
                yield self._emit(current)
                current = StationaryBatch()
            current.entries.append((major, self.matrix.fiber(major)))
            current.num_elements += nnz
        if current.entries:
            yield self._emit(current)

    def _outer_product_batches(self) -> Iterator[StationaryBatch]:
        """Pack individual scalars, walking the stationary matrix fiber by fiber."""
        pending: list[tuple[int, int, float]] = []  # (major=k, minor=m, value)
        for k in range(self.matrix.major_dim):
            for coord, value in self.matrix.fiber(k):
                pending.append((k, coord, value))
                if len(pending) == self.num_multipliers:
                    yield self._emit(_scalar_batch(pending))
                    pending = []
        if pending:
            yield self._emit(_scalar_batch(pending))

    def _gustavson_batches(self) -> Iterator[StationaryBatch]:
        """Pack scalars of one stationary row at a time (never mixing rows)."""
        for m in range(self.matrix.major_dim):
            fiber = self.matrix.fiber(m)
            if fiber.is_empty():
                continue
            elements = list(fiber)
            for start in range(0, len(elements), self.num_multipliers):
                chunk = elements[start : start + self.num_multipliers]
                batch = StationaryBatch(
                    entries=[(m, Fiber((e.coord, e.value) for e in chunk))],
                    num_elements=len(chunk),
                )
                yield self._emit(batch)


def _scalar_batch(pending: list[tuple[int, int, float]]) -> StationaryBatch:
    """Group pending (k, m, value) scalars by k into a StationaryBatch."""
    grouped: dict[int, list[tuple[int, float]]] = {}
    for k, m, value in pending:
        grouped.setdefault(k, []).append((m, value))
    entries = [
        (k, Fiber(sorted(elements), sort=True)) for k, elements in grouped.items()
    ]
    return StationaryBatch(entries=entries, num_elements=len(pending))
