"""Tile filler / tile reader for the streaming operand (STR in Fig. 11).

The streaming operand sits behind the set-associative L1 cache and is
addressed in a virtual address space relative to the beginning of the matrix.
The reader below resolves fiber indices to element-offset ranges (using the
compressed pointer vector, exactly as the Fig. 11 pseudo-code does with
``p_B``) and drives the cache model for every element the dataflow touches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.memory.cache import StreamingCache
from repro.sparse.fiber import Fiber
from repro.sparse.formats import CompressedMatrix


@dataclass
class StreamingReadStats:
    """Counters for the streaming-operand reader."""

    fiber_reads: int = 0
    elements_read: int = 0


class StreamingTileReader:
    """Reads fibers of the streaming operand through the L1 streaming cache."""

    def __init__(self, matrix: CompressedMatrix, cache: StreamingCache) -> None:
        self.matrix = matrix
        self.cache = cache
        self.stats = StreamingReadStats()

    # ------------------------------------------------------------------
    def fiber_nnz(self, fiber_index: int) -> int:
        """Length of the requested fiber without touching the cache."""
        return self.matrix.fiber_nnz(fiber_index)

    def fiber_offset(self, fiber_index: int) -> int:
        """Element offset of the fiber's first element within the matrix storage."""
        return int(self.matrix.pointers[fiber_index])

    def read_fiber(self, fiber_index: int) -> tuple[Fiber, int]:
        """Read one fiber through the cache.

        Returns ``(fiber, misses)``.  Consecutive elements of a fiber share
        cache lines, so the cache is probed once per distinct line while the
        per-element accesses are still accounted in the hit/miss statistics
        (a line hit serves every element in it).
        """
        nnz = self.matrix.fiber_nnz(fiber_index)
        fiber = self.matrix.fiber(fiber_index)
        if nnz == 0:
            return fiber, 0
        misses = self._access_span(self.fiber_offset(fiber_index), nnz)
        self.stats.fiber_reads += 1
        self.stats.elements_read += nnz
        return fiber, misses

    def touch_fiber(self, fiber_index: int) -> int:
        """Drive the cache for a fiber read without materialising the fiber.

        Used on re-streaming passes where the engine already holds the fiber
        contents and only the cache behaviour matters.  Returns the misses.
        """
        nnz = self.matrix.fiber_nnz(fiber_index)
        if nnz == 0:
            return 0
        misses = self._access_span(self.fiber_offset(fiber_index), nnz)
        self.stats.fiber_reads += 1
        self.stats.elements_read += nnz
        return misses

    def read_all_sequential(self) -> int:
        """Stream the entire matrix once, in storage order; return total misses."""
        total_misses = 0
        for fiber_index in range(self.matrix.major_dim):
            total_misses += self.touch_fiber(fiber_index)
        return total_misses

    # ------------------------------------------------------------------
    def _access_span(self, start_element: int, num_elements: int) -> int:
        """Access ``num_elements`` consecutive elements, probing each line once."""
        cache = self.cache
        start_byte = start_element * cache.element_bytes
        end_byte = (start_element + num_elements) * cache.element_bytes - 1
        first_line = start_byte // cache.line_bytes
        last_line = end_byte // cache.line_bytes
        misses = 0
        for line in range(first_line, last_line + 1):
            if not cache.access_byte(line * cache.line_bytes):
                misses += 1
        # The per-line probes above under-count accesses relative to the
        # per-element view the paper reports miss rates against; credit the
        # remaining element accesses as hits on the already-resident line.
        extra_accesses = num_elements - (last_line - first_line + 1)
        if extra_accesses > 0:
            cache.stats.accesses += extra_accesses
            cache.stats.hits += extra_accesses
        return misses
