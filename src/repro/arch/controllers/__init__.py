"""Unified memory controllers (Section 3.5, Fig. 11).

Rather than one controller per (dataflow, memory structure) pair — 30 logic
modules — Flexagon uses five configurable controllers: a tile filler and a
tile reader for the stationary operand, a tile filler and a tile reader for
the streaming operand, and a tile writer for matrix C.  The classes here
reproduce that split; the accelerator engine instantiates them per layer and
drives them according to the configured dataflow.
"""

from repro.arch.controllers.stationary import StationaryBatch, StationaryTileReader
from repro.arch.controllers.streaming import StreamingTileReader
from repro.arch.controllers.writer import OutputTileWriter

__all__ = [
    "StationaryBatch",
    "StationaryTileReader",
    "StreamingTileReader",
    "OutputTileWriter",
]
