"""Tile writer for matrix C (Fig. 11, "Tile Writer C").

The writer receives the elements leaving the MRN and routes them either to
the PSRAM (when the element is a partial sum that will be merged later) or to
the output write buffer on the way to DRAM (when it is a final element of C).
It also assembles the output fibers so the engine can reconstruct the full
output matrix in the layout the dataflow produces.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.arch.memory.psram import Psram
from repro.arch.memory.write_buffer import WriteBuffer
from repro.sparse.fiber import Element, Fiber


@dataclass
class WriterStats:
    """Counters of the C tile writer."""

    final_elements: int = 0
    partial_elements: int = 0
    psram_spills: int = 0


class OutputTileWriter:
    """Routes produced elements to the PSRAM or to DRAM via the write buffer."""

    def __init__(self, psram: Psram, write_buffer: WriteBuffer) -> None:
        self.psram = psram
        self.write_buffer = write_buffer
        self.stats = WriterStats()
        self._final_fibers: dict[int, list[Element]] = {}

    # ------------------------------------------------------------------
    def write_partial(self, row: int, k: int, element: Element) -> bool:
        """Store a partial sum in the PSRAM; returns False when it spilled to DRAM."""
        self.stats.partial_elements += 1
        stored = self.psram.partial_write(row, k, element)
        if not stored:
            self.stats.psram_spills += 1
        return stored

    def write_final(self, major: int, element: Element) -> None:
        """Emit a final element of C (appends to the output fiber for ``major``)."""
        self.stats.final_elements += 1
        self.write_buffer.write(element)
        self._final_fibers.setdefault(major, []).append(element)

    def write_final_fiber(self, major: int, fiber: Fiber) -> None:
        """Emit a whole final output fiber."""
        for element in fiber:
            self.write_final(major, element)

    # ------------------------------------------------------------------
    def collected_fibers(self) -> dict[int, Fiber]:
        """Return the final output fibers accumulated so far, sorted by coordinate."""
        out: dict[int, Fiber] = {}
        for major, elements in self._final_fibers.items():
            out[major] = Fiber(
                ((e.coord, e.value) for e in elements), sort=True
            )
        return out

    def flush(self) -> int:
        """Flush the write buffer to DRAM; return elements drained."""
        return self.write_buffer.flush()
