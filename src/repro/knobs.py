"""Central registry of the ``REPRO_*`` environment knobs.

Every environment variable the package reads is declared here exactly once:
its name, default, parser and a one-line description.  Call sites go through
:func:`get` (or :func:`raw`) instead of touching ``os.environ`` directly —
the ``env-knob`` rule of ``python -m repro.analyze`` enforces that — so the
full knob surface is discoverable in one place, the README's knobs table can
be checked against it, and a typo'd variable name fails loudly here instead
of silently reading nothing.

Semantics shared by every knob:

* an **unset or empty** variable falls back to the registered default
  (``None`` when the knob has no default — the caller decides);
* parsers validate eagerly and raise :class:`ValueError` with the knob name
  in the message, so a bad value fails at configuration time, not mid-sweep.

Writing knobs (e.g. ``os.environ.setdefault`` in the CLI and test
bootstrap) stays with ``os.environ`` — the registry centralises *reads*.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable

#: Valid values of the ``REPRO_SCHED`` knob (the runner re-exports this).
SCHEDULE_MODES = ("cost", "fifo")

#: Valid values of the ``REPRO_POOL`` knob (the pool re-exports this).
POOL_MODES = ("persistent", "ephemeral", "remote")


@dataclass(frozen=True)
class Knob:
    """One declared environment knob."""

    #: Environment variable name (``REPRO_*``).
    name: str
    #: Raw default applied when the variable is unset or empty (``None``:
    #: no default; :func:`get` returns ``None`` and the caller decides).
    default: str | None
    #: Parser from the raw string to the typed value (``None``: plain str).
    parse: Callable[[str], object] | None
    #: One-line description (the README knobs table is checked against it).
    doc: str


def _flag(raw: str) -> bool:
    """The package's boolean-knob convention: everything but ``"0"`` is on."""
    return raw != "0"


def _on_flag(raw: str) -> bool:
    """Opt-in convention for off-by-default knobs: only ``"1"`` enables."""
    return raw == "1"


def _choice(name: str, choices: tuple[str, ...]) -> Callable[[str], str]:
    def parse(raw: str) -> str:
        if raw not in choices:
            raise ValueError(f"{name} must be one of {choices}, got {raw!r}")
        return raw

    return parse


def _integer(name: str, minimum: int | None = None, floor: int | None = None):
    """Integer parser; ``minimum`` rejects, ``floor`` silently clamps."""

    def parse(raw: str) -> int:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"{name} must be an integer, got {raw!r}") from None
        if minimum is not None and value < minimum:
            raise ValueError(f"{name} must be at least {minimum}")
        if floor is not None:
            value = max(floor, value)
        return value

    return parse


def _positive_float(name: str) -> Callable[[str], float]:
    def parse(raw: str) -> float:
        try:
            value = float(raw)
        except ValueError:
            raise ValueError(f"{name} must be a number, got {raw!r}") from None
        if value <= 0:
            raise ValueError(f"{name} must be positive")
        return value

    return parse


def _float(name: str) -> Callable[[str], float]:
    def parse(raw: str) -> float:
        try:
            return float(raw)
        except ValueError:
            raise ValueError(f"{name} must be a number, got {raw!r}") from None

    return parse


def _knob(name: str, default: str | None, parse, doc: str) -> Knob:
    return Knob(name=name, default=default, parse=parse, doc=doc)


#: The full knob surface, one entry per environment variable.
KNOBS: dict[str, Knob] = {
    knob.name: knob
    for knob in (
        _knob(
            "REPRO_CACHE_DIR", ".repro_cache", None,
            "Result-cache directory (default `.repro_cache/` under the CWD)",
        ),
        _knob(
            "REPRO_CACHE", "1", _flag,
            "Set to `0` to disable the persistent result cache",
        ),
        _knob(
            "REPRO_WORKERS", None, _integer("REPRO_WORKERS", floor=1),
            "Process-pool width (default: the full `os.cpu_count()`)",
        ),
        _knob(
            "REPRO_PARALLEL", "1", _flag,
            "Set to `0` to force the serial executor",
        ),
        _knob(
            "REPRO_POOL", "persistent", _choice("REPRO_POOL", POOL_MODES),
            "Worker pool: `persistent` (default), `ephemeral` or `remote`",
        ),
        _knob(
            "REPRO_SCHED", "cost", _choice("REPRO_SCHED", SCHEDULE_MODES),
            "Dispatch order: `cost` (grouped, longest-first; default) or `fifo`",
        ),
        _knob(
            "REPRO_SHARE_ENGINE", "1", _flag,
            "Set to `0` to disable engine-result sharing between designs",
        ),
        _knob(
            "REPRO_LEASE_SECONDS", "30",
            _positive_float("REPRO_LEASE_SECONDS"),
            "Fabric work-item lease length in seconds (default 30)",
        ),
        _knob(
            "REPRO_MAX_ATTEMPTS", "5", _integer("REPRO_MAX_ATTEMPTS", minimum=1),
            "Lease grants per fabric work item before the sweep fails (default 5)",
        ),
        _knob(
            "REPRO_FABRIC_HOST", "127.0.0.1", None,
            "Bind address of the standalone fabric listener (default loopback)",
        ),
        _knob(
            "REPRO_FABRIC_PORT", "8735", _integer("REPRO_FABRIC_PORT"),
            "Port of the standalone fabric listener (default 8735; 0 picks free)",
        ),
        _knob(
            "REPRO_FABRIC_LISTEN", "1", _flag,
            "Set to `0` to never auto-start the standalone fabric listener",
        ),
        _knob(
            "REPRO_FABRIC_TOKEN", None, None,
            "Shared fabric secret; required to expose fabric routes beyond loopback",
        ),
        _knob(
            "REPRO_CHAOS", None, None,
            "Worker fault injection: `die_after:N`, `stall` or `corrupt` (tests)",
        ),
        _knob(
            "REPRO_FULL_SCALE", "0", _on_flag,
            "Set to `1` to simulate full-size (unscaled) layers",
        ),
        _knob(
            "REPRO_MAX_DENSE_MACS", None, _float("REPRO_MAX_DENSE_MACS"),
            "Per-layer dense-MAC budget driving the scaling policy",
        ),
        _knob(
            "REPRO_MAX_LAYERS", None, _integer("REPRO_MAX_LAYERS"),
            "Layers sampled per model in the end-to-end sweep",
        ),
        _knob(
            "REPRO_ENGINE", None, None,
            "SpMSpM engine backend: `vectorized` (default) or `reference`",
        ),
        _knob(
            "REPRO_BACKOFF_INITIAL", "0.2",
            _positive_float("REPRO_BACKOFF_INITIAL"),
            "First retry delay in seconds of the shared backoff policy (default 0.2)",
        ),
        _knob(
            "REPRO_BACKOFF_CAP", "30", _positive_float("REPRO_BACKOFF_CAP"),
            "Ceiling in seconds on any backoff delay (default 30)",
        ),
        _knob(
            "REPRO_BACKOFF_MULTIPLIER", "2",
            _positive_float("REPRO_BACKOFF_MULTIPLIER"),
            "Growth factor between consecutive backoff delays (default 2)",
        ),
        _knob(
            "REPRO_BACKOFF_JITTER", "0.1", _float("REPRO_BACKOFF_JITTER"),
            "Jitter fraction applied to backoff delays and periodic polls (default 0.1)",
        ),
        _knob(
            "REPRO_RETRY_ATTEMPTS", "5",
            _integer("REPRO_RETRY_ATTEMPTS", minimum=1),
            "Attempts granted per transient-error retry loop (default 5)",
        ),
        _knob(
            "REPRO_HTTP_TIMEOUT", "60", _positive_float("REPRO_HTTP_TIMEOUT"),
            "Socket timeout in seconds of fabric/sync HTTP clients (default 60)",
        ),
        _knob(
            "REPRO_BREAKER_THRESHOLD", "5",
            _integer("REPRO_BREAKER_THRESHOLD", minimum=1),
            "Consecutive failures that open the worker's circuit breaker (default 5)",
        ),
        _knob(
            "REPRO_BREAKER_RESET", "15", _positive_float("REPRO_BREAKER_RESET"),
            "Seconds an open circuit breaker waits before its half-open probe (default 15)",
        ),
        _knob(
            "REPRO_REQUEST_DEADLINE", "30", _float("REPRO_REQUEST_DEADLINE"),
            "Serve per-request wall deadline in seconds; `0` disables (default 30)",
        ),
        _knob(
            "REPRO_DRAIN_SECONDS", "10", _float("REPRO_DRAIN_SECONDS"),
            "Seconds a shutting-down server waits for in-flight jobs (default 10)",
        ),
        _knob(
            "REPRO_JOB_POOL_DEPTH", "8",
            _integer("REPRO_JOB_POOL_DEPTH", minimum=1),
            "In-flight background jobs admitted before cold requests shed with 503 (default 8)",
        ),
        _knob(
            "REPRO_DSE_MAX_NNZ", "2000000",
            _integer("REPRO_DSE_MAX_NNZ", minimum=1),
            "Max stored entries a MatrixMarket workload file may declare (default 2e6)",
        ),
        _knob(
            "REPRO_DSE_MAX_DIM", "100000",
            _integer("REPRO_DSE_MAX_DIM", minimum=1),
            "Max rows/columns a MatrixMarket workload file may declare (default 1e5)",
        ),
        _knob(
            "REPRO_DSE_DIR", None, None,
            "Directory of `*.mtx` files auto-registered as DSE workloads by stem name",
        ),
        _knob(
            "REPRO_API_KEYS", None, None,
            "Comma-separated `label:sha256hex` API keys; unset leaves the server open",
        ),
        _knob(
            "REPRO_RATE_LIMIT", None, _integer("REPRO_RATE_LIMIT", minimum=1),
            "Figure/sweep requests allowed per key per window; unset disables rate limiting",
        ),
        _knob(
            "REPRO_RATE_WINDOW", "60", _positive_float("REPRO_RATE_WINDOW"),
            "Sliding-window length in seconds behind `REPRO_RATE_LIMIT` (default 60)",
        ),
        _knob(
            "REPRO_COLD_QUOTA", None, _integer("REPRO_COLD_QUOTA", minimum=1),
            "Cold jobs allowed per key per UTC day; unset disables the quota",
        ),
        _knob(
            "REPRO_QUOTA_DIR", ".repro_quota", None,
            "Directory of the on-disk daily cold-quota counters (default `.repro_quota/`)",
        ),
    )
}


def raw(name: str) -> str | None:
    """The raw environment value of one registered knob.

    Returns ``None`` when the variable is unset **or empty** (every reader
    in the package treats an empty string as unset).  Raises ``KeyError``
    for a name that is not registered — an unregistered read is exactly the
    drift this module exists to prevent.
    """
    knob = KNOBS[name]
    return os.environ.get(knob.name) or None


def get(name: str):
    """The parsed value of one registered knob (default applied).

    Unset/empty falls back to the registered default; a knob with no
    default yields ``None``.  Parse failures raise :class:`ValueError`
    naming the knob.
    """
    knob = KNOBS[name]
    text = raw(name)
    if text is None:
        text = knob.default
    if text is None:
        return None
    return knob.parse(text) if knob.parse is not None else text


def table_rows() -> list[tuple[str, str]]:
    """``(name, doc)`` pairs in registry order (the README table source)."""
    return [(knob.name, knob.doc) for knob in KNOBS.values()]
