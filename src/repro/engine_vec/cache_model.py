"""Batched, exact set-associative LRU cache model.

The reference :class:`~repro.arch.memory.cache.StreamingCache` resolves one
line address at a time against per-set ``OrderedDict`` LRU state.  This
module computes the same hit/miss outcome for a *whole access trace at once*
with NumPy, using the classic stack-distance characterisation of LRU:

    an access to line ``t`` hits iff ``t`` has been accessed before and the
    number of **distinct** lines of the same set accessed since ``t``'s
    previous access is smaller than the associativity ``W``.

Counting those distinct reuse intervals is reduced to an order-statistics
problem.  Arrange the trace set-major (stable sort by set index, so each
set's accesses stay in program order and occupy a contiguous block).  Let
``p[i]`` be the position of the previous access to the same line (``-1`` for
first accesses).  Because every position ``j <= p[i]`` trivially satisfies
``p[j] < j <= p[i]``, and every position inside the reuse window
``(p[i], i)`` belongs to the same set block, the distinct count is

    ``C[i] = #{j < i : p[j] <= p[i]} - (p[i] + 1)``

— the number of *window-first* occurrences inside the reuse interval.  The
prefix rank ``H[i] = #{j < i : p[j] <= p[i]}`` is computed for all positions
simultaneously with a bottom-up merge tree: at each level, elements in a
right-hand block count their peers in the left sibling block with one
segmented ``searchsorted``.  The whole trace therefore costs
``O(n log^2 n)`` NumPy work with no per-access Python, and the result is
*identical* to replaying the trace through ``StreamingCache``
(``tests/test_engine_equivalence.py`` cross-checks random traces).
"""

from __future__ import annotations

import numpy as np


def prefix_rank_leq(values: np.ndarray) -> np.ndarray:
    """``H[i] = #{j < i : values[j] <= values[i]}`` for every position ``i``.

    ``values`` must be a 1-D int64 array with entries in ``[-1, len(values))``
    (the range previous-occurrence indices live in).
    """
    n = len(values)
    rank = np.zeros(n, dtype=np.int64)
    if n <= 1:
        return rank
    # Shift into [0, n] so block offsets can be encoded multiplicatively.
    vals = values.astype(np.int64) + 1
    sentinel = np.int64(n + 1)  # greater than every real value and query
    mult = np.int64(n + 2)
    npow = 1 << (n - 1).bit_length()
    buf = np.full(npow, sentinel, dtype=np.int64)
    buf[:n] = vals
    pos = np.arange(n, dtype=np.int64)
    # Level of size-1 blocks: each odd position counts its left neighbour.
    odd = np.arange(1, n, 2)
    rank[odd] += vals[odd - 1] <= vals[odd]
    size = 2
    while size < npow:
        nblocks = npow // size
        # Only left (even) siblings are ever searched, so only they are
        # sorted.  Encoding the sibling-pair id into the values lets one
        # global searchsorted perform an independent binary search per block.
        left_sorted = np.sort(buf.reshape(nblocks, size)[0::2], axis=1)
        encoded = (
            left_sorted + (np.arange(nblocks // 2, dtype=np.int64) * mult)[:, None]
        ).ravel()
        block = pos // size
        right = (block & 1) == 1
        pair = block[right] // 2
        queries = vals[right] + pair * mult
        inserted = np.searchsorted(encoded, queries, side="right")
        rank[right] += inserted - pair * size
        size *= 2
    return rank


def lru_hits(lines: np.ndarray, num_sets: int, associativity: int) -> np.ndarray:
    """Hit/miss outcome of an ordered line-address trace, as a bool array.

    Exactly equivalent to probing ``lines`` one by one against a cold
    set-associative LRU cache with ``num_sets`` sets and ``associativity``
    ways (set index = line address modulo ``num_sets``), but computed for the
    whole trace at once.
    """
    n = len(lines)
    if n == 0:
        return np.zeros(0, dtype=bool)
    lines = np.asarray(lines, dtype=np.int64)
    # Set-major, time-stable arrangement: accesses of one set are contiguous
    # and in program order.  LRU state is per set, so accesses to different
    # sets commute and this reordering preserves every hit/miss outcome.
    order = np.argsort(lines % num_sets, kind="stable")
    trace = lines[order]
    hits = np.empty(n, dtype=bool)
    hits[order] = _hits_setmajor(trace, num_sets, associativity)
    return hits


def _hits_setmajor(trace: np.ndarray, num_sets: int, associativity: int) -> np.ndarray:
    """Hits for a set-major-ordered trace (helper of :func:`lru_hits`)."""
    n = len(trace)
    prev = _previous_occurrence(trace)
    hits = prev >= 0
    # A set whose distinct working set fits its ways never evicts, so every
    # non-first access hits — only overflowing sets need stack distances.
    first_lines = trace[prev < 0]
    distinct_per_set = np.bincount(first_lines % num_sets, minlength=num_sets)
    if int(distinct_per_set.max()) <= associativity:
        return hits
    over = distinct_per_set[trace % num_sets] > associativity
    sub_trace = trace[over]
    # Dropping the accesses of other (whole) sets leaves each remaining
    # set's subsequence intact, so reuse windows are unchanged.
    sub_prev = _previous_occurrence(sub_trace)
    distinct_between = prefix_rank_leq(sub_prev) - sub_prev - 1
    hits[over] = (sub_prev >= 0) & (distinct_between < associativity)
    return hits


def _previous_occurrence(trace: np.ndarray) -> np.ndarray:
    """Index of the previous access to the same line (-1 for first accesses).

    Equal line addresses imply equal sets, so sorting by address groups
    repeat accesses while the stable order keeps them chronological.
    """
    n = len(trace)
    by_line = np.argsort(trace, kind="stable")
    grouped = trace[by_line]
    prev = np.full(n, -1, dtype=np.int64)
    same = grouped[1:] == grouped[:-1]
    prev[by_line[1:][same]] = by_line[:-1][same]
    return prev


def expand_spans(
    first_line: np.ndarray, line_counts: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Expand per-span ``(first_line, count)`` pairs into a flat line trace.

    Returns ``(lines, span_of_line)`` where ``span_of_line[i]`` is the index
    of the span the ``i``-th line access belongs to.
    """
    counts = np.asarray(line_counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    span_of_line = np.repeat(np.arange(len(counts), dtype=np.int64), counts)
    ends = np.cumsum(counts)
    offsets = np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)
    lines = np.repeat(np.asarray(first_line, dtype=np.int64), counts) + offsets
    return lines, span_of_line


def fiber_line_spans(
    start_elements: np.ndarray,
    element_counts: np.ndarray,
    element_bytes: int,
    line_bytes: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-fiber-touch ``(first_line, line_count)`` arrays.

    Mirrors :meth:`repro.arch.controllers.streaming.StreamingTileReader._access_span`:
    a touch of ``count`` consecutive elements starting at element offset
    ``start`` probes every line from the one holding its first byte to the
    one holding its last byte.  Touches with zero elements probe no lines.
    """
    starts = np.asarray(start_elements, dtype=np.int64)
    counts = np.asarray(element_counts, dtype=np.int64)
    first_line = (starts * element_bytes) // line_bytes
    last_byte = (starts + counts) * element_bytes - 1
    line_counts = np.where(counts > 0, last_byte // line_bytes - first_line + 1, 0)
    return first_line, line_counts
