"""NumPy array kernels for the three dataflow walks.

Each ``run_*`` function below is the vectorized twin of the corresponding
``SpmspmEngine._run_*`` method: it consumes the same
:class:`~repro.accelerators.engine._LayerContext` and produces **identical**
statistics, traffic, DRAM counters and cycle counts (see the package
docstring for the fidelity contract).  The kernels operate directly on the
CSR/CSC storage arrays (``pointers`` / ``indices``), replace the per-element
cache walk with the batched LRU model of
:mod:`repro.engine_vec.cache_model`, and compute per-batch cycle terms as
float64 arrays that are then accumulated in the reference's iteration order
so the floating-point sums match bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.engine_vec.cache_model import expand_spans, fiber_line_spans, lru_hits

#: Expansion budget (elements) for grouped distinct-coordinate counting.
_UNION_CHUNK_ELEMENTS = 1 << 21

try:  # SciPy is optional: its C spgemm makes the structure-only pass faster,
    # but the NumPy fallback computes the very same exact integer counts.
    from scipy import sparse as _scipy_sparse
except ImportError:  # pragma: no cover - depends on the environment
    _scipy_sparse = None


# ----------------------------------------------------------------------
# Shared helpers
# ----------------------------------------------------------------------
def ordered_sum(values: np.ndarray, initial: float = 0.0) -> float:
    """Sum ``values`` left to right with scalar float adds.

    ``np.sum`` uses pairwise accumulation, which is *not* bit-identical to
    the reference engine's sequential ``+=`` loop; this helper restores the
    exact accumulation order (the arrays hold one term per batch/row, so the
    Python loop is tiny compared to the per-element work it replaces).
    """
    total = initial
    for value in values.tolist():
        total += value
    return total


def grouped_union_counts(
    b_indices: np.ndarray,
    b_pointers: np.ndarray,
    ks: np.ndarray,
    groups: np.ndarray,
    num_groups: int,
    minor_dim: int,
) -> np.ndarray:
    """Distinct minor coordinates of ``union(B[k, :] for k in group)`` per group.

    ``ks`` lists B fibers in group-major order (``groups`` must be
    non-decreasing); the result is exact — equivalent to
    ``len(np.unique(concatenate(fiber coords)))`` per group.  With SciPy
    available the count is the structural row-nnz of a boolean spgemm
    (selector-matrix x B); otherwise fiber coordinate slices are expanded in
    bounded-size batches of whole groups, so peak memory stays bounded even
    for large products.  Both paths produce the same exact integers.
    """
    out = np.zeros(num_groups, dtype=np.int64)
    nk = len(ks)
    if nk == 0 or minor_dim == 0:
        return out
    ks = np.asarray(ks, dtype=np.int64)
    groups = np.asarray(groups, dtype=np.int64)
    if _scipy_sparse is not None:
        k_dim = len(b_pointers) - 1
        indptr = np.concatenate(([0], np.cumsum(np.bincount(groups, minlength=num_groups))))
        selector = _scipy_sparse.csr_matrix(
            (np.ones(nk, dtype=np.int64), ks, indptr), shape=(num_groups, k_dim)
        )
        b_struct = _scipy_sparse.csr_matrix(
            (np.ones(len(b_indices), dtype=np.int64), b_indices, b_pointers),
            shape=(k_dim, minor_dim),
        )
        # The product's sparsity structure is the per-group union of B fibers
        # (scipy's symbolic pass; explicit zeros are never produced since all
        # inputs are positive), so indptr differences are the distinct counts.
        return np.diff((selector @ b_struct).indptr).astype(np.int64)
    counts = b_pointers[ks + 1] - b_pointers[ks]
    # Slice boundaries in ``ks`` space: never split a group across slices
    # (a coordinate present on both sides would be counted twice).
    group_change = np.flatnonzero(np.concatenate(([True], groups[1:] != groups[:-1])))
    group_sizes = np.add.reduceat(counts, group_change)
    cum = np.cumsum(group_sizes)
    start_group = 0
    num_chunks = len(group_change)
    while start_group < num_chunks:
        base = cum[start_group - 1] if start_group else 0
        end_group = int(np.searchsorted(cum, base + _UNION_CHUNK_ELEMENTS, side="left")) + 1
        end_group = max(start_group + 1, min(end_group, num_chunks))
        lo = group_change[start_group]
        hi = group_change[end_group] if end_group < num_chunks else nk
        sl_ks = ks[lo:hi]
        sl_groups = groups[lo:hi]
        sl_counts = counts[lo:hi]
        cols, of = expand_spans(b_pointers[sl_ks], sl_counts)
        if len(cols):
            coords = b_indices[cols]
            keys = sl_groups[of] * np.int64(minor_dim) + coords
            unique_keys = np.unique(keys)
            out += np.bincount(unique_keys // np.int64(minor_dim), minlength=num_groups)
        start_group = end_group
    return out


def _flush_dram(counter, field: str, total: int, requests: int) -> None:
    """Credit bulk traffic to one DRAM stream, mirroring per-call accounting."""
    setattr(counter.traffic, field, getattr(counter.traffic, field) + int(total))
    counter.requests += int(requests)


#: Upper bound on the materialized line-address trace, in int64 entries.
#: The batched LRU path allocates roughly 6-10 trace-sized temporaries
#: (expanded lines, sort orders, previous-occurrence and merge-tree buffers),
#: so the cap is set to bound *peak* memory near ~0.5-1 GB, not just the
#: trace itself.  Larger traces fall back to the reference per-line walk,
#: which needs only O(cache) memory — slower, but it cannot exhaust memory
#: on unscaled (REPRO_FULL_SCALE) layers.
_MAX_TRACE_LINES = 1 << 23


def _fiber_touch_misses(ctx, cfg, fibers: np.ndarray, nnzs: np.ndarray) -> np.ndarray:
    """Per-touch streaming-cache misses for an ordered fiber-touch sequence.

    ``fibers``/``nnzs`` must already exclude empty fibers.  Uses the batched
    LRU model when the full line trace fits the memory budget; otherwise
    drives the context's reference reader touch by touch (bit-identical
    either way).  Cache hit/miss *statistics* are updated here in both
    paths, so callers must not account them again.
    """
    first_line, line_counts = fiber_line_spans(
        ctx.streaming.pointers[fibers], nnzs, ctx.element_bytes, cfg.str_cache_line_bytes
    )
    if int(line_counts.sum()) <= _MAX_TRACE_LINES:
        lines, line_touch = expand_spans(first_line, line_counts)
        hits = lru_hits(lines, ctx.cache.num_sets, cfg.str_cache_associativity)
        misses = np.bincount(line_touch[~hits], minlength=len(fibers))
        total_misses = int(misses.sum())
        total_elements = int(nnzs.sum())
        ctx.cache.stats.accesses += total_elements
        ctx.cache.stats.misses += total_misses
        ctx.cache.stats.hits += total_elements - total_misses
        ctx.cache.stats.miss_bytes += total_misses * cfg.str_cache_line_bytes
        return misses
    reader = ctx.reader
    return np.array(
        [reader.touch_fiber(int(fiber)) for fiber in fibers], dtype=np.int64
    )


# ----------------------------------------------------------------------
# Inner Product
# ----------------------------------------------------------------------
def run_inner_product(engine, ctx) -> None:
    """Vectorized twin of :meth:`SpmspmEngine._run_inner_product`."""
    from repro.accelerators.engine import _lines_for, _pack_whole_fibers

    cfg = engine.config
    a_csr = ctx.a_csr
    b_row_nnz = ctx.b_row_nnz
    eb = ctx.element_bytes
    bpc = ctx.dram.bytes_per_cycle
    snnz = int(ctx.streaming.nnz)
    streaming_lines = _lines_for(snnz, ctx)
    fits_in_cache = snnz * eb <= cfg.str_cache_bytes

    batches = _pack_whole_fibers(a_csr, cfg.num_multipliers)
    nb = len(batches)
    ctx.stats.output_elements = int(ctx.c_row_nnz.sum())
    if nb == 0:
        return

    # Flatten the greedy packing into per-entry arrays.
    entry_m = np.array(
        [m for batch in batches for (m, _, _) in batch], dtype=np.int64
    )
    entry_s = np.array(
        [s for batch in batches for (_, s, _) in batch], dtype=np.int64
    )
    entry_e = np.array(
        [e for batch in batches for (_, _, e) in batch], dtype=np.int64
    )
    entry_b = np.repeat(
        np.arange(nb, dtype=np.int64),
        np.array([len(batch) for batch in batches], dtype=np.int64),
    )

    # Effectual multiplications per entry via a prefix sum over the element
    # positions of A (every stored (m, k) meets nnz(B[k, :]) streamed elems).
    mult_prefix = np.concatenate(
        ([0], np.cumsum(b_row_nnz[np.asarray(a_csr.indices, dtype=np.int64)]))
    )
    sta_entry = entry_e - entry_s
    mults_entry = mult_prefix[entry_e] - mult_prefix[entry_s]
    completes = entry_e == a_csr.pointers[entry_m + 1]
    out_entry = np.where(completes, ctx.c_row_nnz[entry_m], 0)

    sta_b = np.zeros(nb, dtype=np.int64)
    np.add.at(sta_b, entry_b, sta_entry)
    mults_b = np.zeros(nb, dtype=np.int64)
    np.add.at(mults_b, entry_b, mults_entry)
    out_b = np.zeros(nb, dtype=np.int64)
    np.add.at(out_b, entry_b, out_entry)
    rows_b = np.bincount(entry_b, minlength=nb)

    # Closed-form cache behaviour: compulsory misses on the first pass, then
    # all hits iff the streaming matrix fits, full thrashing otherwise.
    pass_misses = np.full(
        nb, streaming_lines if not fits_in_cache else 0, dtype=np.int64
    )
    pass_misses[0] = streaming_lines
    total_misses = int(pass_misses.sum())
    ctx.cache.stats.accesses += snnz * nb
    ctx.cache.stats.misses += total_misses
    ctx.cache.stats.hits += snnz * nb - total_misses
    ctx.cache.stats.miss_bytes += total_misses * cfg.str_cache_line_bytes

    total_sta = int(sta_b.sum())
    ctx.stats.stationary_iterations += nb
    ctx.stats.stationary_elements_read += total_sta
    ctx.traffic.sta_bytes += total_sta * eb
    _flush_dram(ctx.dram, "sta_read_bytes", total_sta * eb, int(np.count_nonzero(sta_b)))

    ctx.stats.streaming_elements_read += snnz * nb
    ctx.traffic.str_bytes += snnz * eb * nb
    miss_bytes_b = pass_misses * cfg.str_cache_line_bytes
    _flush_dram(
        ctx.dram,
        "str_read_bytes",
        total_misses * cfg.str_cache_line_bytes,
        int(np.count_nonzero(miss_bytes_b)),
    )

    ctx.stats.multiplications += int(mults_b.sum())
    ctx.stats.additions += int(np.maximum(0, mults_b - out_b).sum())
    ctx.stats.intersection_probes += snnz * int(rows_b.sum())

    out_bytes_b = out_b * eb
    _flush_dram(
        ctx.dram,
        "output_write_bytes",
        int(out_bytes_b.sum()),
        int(np.count_nonzero(out_bytes_b)),
    )

    ctx.cycles.stationary = ordered_sum(
        np.maximum(sta_b / cfg.distribution_bandwidth, (sta_b * eb) / bpc),
        ctx.cycles.stationary,
    )
    compute_b = np.maximum(snnz / cfg.distribution_bandwidth, out_b / cfg.reduction_bandwidth)
    dram_b = (miss_bytes_b + out_bytes_b) / bpc
    ctx.cycles.streaming = ordered_sum(
        np.maximum(compute_b, dram_b) + ctx.tree_depth, ctx.cycles.streaming
    )


# ----------------------------------------------------------------------
# Outer Product
# ----------------------------------------------------------------------
def run_outer_product(engine, ctx) -> None:
    """Vectorized twin of :meth:`SpmspmEngine._run_outer_product`."""
    cfg = engine.config
    a_csc = ctx.stationary
    b_row_nnz = ctx.b_row_nnz
    eb = ctx.element_bytes
    bpc = ctx.dram.bytes_per_cycle
    counts = np.diff(a_csc.pointers)
    ks_all = np.repeat(np.arange(a_csc.major_dim, dtype=np.int64), counts)
    ms_all = np.asarray(a_csc.indices, dtype=np.int64)
    psum_rows = ms_all
    psum_lens = b_row_nnz[ks_all]

    n = len(ks_all)
    if n:
        P = cfg.num_multipliers
        positions = np.arange(n, dtype=np.int64)
        batch_of = positions // P
        nb = int(batch_of[-1]) + 1
        sta_b = np.bincount(batch_of, minlength=nb)

        # One fiber touch per distinct k per batch; ks_all is non-decreasing,
        # so "distinct within batch" is "differs from predecessor or starts a
        # batch", and the touch order matches np.unique's ascending order.
        is_touch = np.empty(n, dtype=bool)
        is_touch[0] = True
        np.not_equal(ks_all[1:], ks_all[:-1], out=is_touch[1:])
        is_touch[::P] = True
        touch_k = ks_all[is_touch]
        touch_b = batch_of[is_touch]
        touch_nnz = ctx.streaming_fiber_nnz[touch_k]

        streamed_b = np.zeros(nb, dtype=np.int64)
        np.add.at(streamed_b, touch_b, touch_nnz)
        boundaries = np.concatenate((np.arange(0, n, P, dtype=np.int64), [n]))
        mult_prefix = np.concatenate(([0], np.cumsum(psum_lens)))
        mults_b = mult_prefix[boundaries[1:]] - mult_prefix[boundaries[:-1]]

        active = touch_nnz > 0
        miss_per_touch = _fiber_touch_misses(
            ctx, cfg, touch_k[active], touch_nnz[active]
        )
        miss_b = np.zeros(nb, dtype=np.int64)
        np.add.at(miss_b, touch_b[active], miss_per_touch)
        total_misses = int(miss_per_touch.sum())
        total_streamed = int(streamed_b.sum())

        ctx.stats.stationary_iterations += nb
        ctx.stats.stationary_elements_read += n
        ctx.traffic.sta_bytes += n * eb
        _flush_dram(ctx.dram, "sta_read_bytes", n * eb, int(np.count_nonzero(sta_b)))

        total_mults = int(mults_b.sum())
        ctx.stats.streaming_elements_read += total_streamed
        ctx.traffic.str_bytes += total_streamed * eb
        ctx.stats.multiplications += total_mults
        ctx.stats.psum_writes += total_mults
        ctx.traffic.psum_bytes += total_mults * eb

        miss_bytes_b = miss_b * cfg.str_cache_line_bytes
        _flush_dram(
            ctx.dram,
            "str_read_bytes",
            total_misses * cfg.str_cache_line_bytes,
            int(np.count_nonzero(miss_bytes_b)),
        )

        ctx.cycles.stationary = ordered_sum(
            np.maximum(sta_b / cfg.distribution_bandwidth, (sta_b * eb) / bpc),
            ctx.cycles.stationary,
        )
        compute_b = np.maximum(
            streamed_b / cfg.distribution_bandwidth, mults_b / cfg.reduction_bandwidth
        )
        ctx.cycles.streaming = ordered_sum(
            np.maximum(compute_b, miss_bytes_b / bpc) + 1, ctx.cycles.streaming
        )

    # The merging-phase model is analytic already and shared verbatim with
    # the reference backend, which guarantees the merge cycles/traffic match.
    engine._merge_partial_fibers(ctx, psum_rows, psum_lens)
    ctx.stats.output_elements = int(ctx.c_row_nnz.sum())


# ----------------------------------------------------------------------
# Gustavson
# ----------------------------------------------------------------------
def run_gustavson(engine, ctx) -> None:
    """Vectorized twin of :meth:`SpmspmEngine._run_gustavson`."""
    cfg = engine.config
    a_csr = ctx.stationary
    b_csr = ctx.streaming
    b_row_nnz = ctx.b_row_nnz
    eb = ctx.element_bytes
    bpc = ctx.dram.bytes_per_cycle
    P = cfg.num_multipliers

    a_ptr = np.asarray(a_csr.pointers)
    a_idx = np.asarray(a_csr.indices, dtype=np.int64)
    row_nnz = np.diff(a_ptr)
    rows = np.flatnonzero(row_nnz)
    ctx.stats.output_elements = int(ctx.c_row_nnz.sum())
    if len(rows) == 0:
        return

    # Chunk layout: each non-empty row is cut into ceil(nnz/P) chunks of up
    # to P stationary scalars, processed row-major (the reference loop order).
    chunks_per_row = (row_nnz[rows] + P - 1) // P
    nchunks = int(chunks_per_row.sum())
    chunk_row = np.repeat(rows, chunks_per_row)
    chunk_pos = np.arange(nchunks, dtype=np.int64) - np.repeat(
        np.cumsum(chunks_per_row) - chunks_per_row, chunks_per_row
    )
    sta_b = np.minimum(row_nnz[chunk_row] - chunk_pos * P, P)
    multi_b = row_nnz[chunk_row] > P  # chunk belongs to a multi-chunk row

    # Every stored element of A is one fiber touch, in storage order; its
    # chunk is derived from the chunk sizes directly.
    elem_chunk = np.repeat(np.arange(nchunks, dtype=np.int64), sta_b)
    ks = a_idx
    touch_nnz = b_row_nnz[ks]

    chunk_bounds = np.concatenate(([0], np.cumsum(sta_b)))
    nnz_prefix = np.concatenate(([0], np.cumsum(touch_nnz)))
    streamed_b = nnz_prefix[chunk_bounds[1:]] - nnz_prefix[chunk_bounds[:-1]]
    mults_b = streamed_b

    active = touch_nnz > 0
    miss_per_touch = _fiber_touch_misses(ctx, cfg, ks[active], touch_nnz[active])
    miss_b = np.zeros(nchunks, dtype=np.int64)
    np.add.at(miss_b, elem_chunk[active], miss_per_touch)
    total_misses = int(miss_per_touch.sum())
    total_streamed = int(streamed_b.sum())

    # Per-chunk output unions of the multi-chunk rows (the partial fibers
    # written to / merged from the PSRAM); single-chunk rows write C rows
    # straight out.
    chunk_out = np.zeros(nchunks, dtype=np.int64)
    multi_elems = multi_b[elem_chunk]
    if np.any(multi_elems):
        chunk_out += grouped_union_counts(
            np.asarray(b_csr.indices, dtype=np.int64),
            np.asarray(b_csr.pointers, dtype=np.int64),
            ks[multi_elems],
            elem_chunk[multi_elems],
            nchunks,
            b_csr.minor_dim,
        )
    out_bytes_b = np.where(multi_b, 0, ctx.c_row_nnz[chunk_row]) * eb

    total_sta = int(sta_b.sum())
    ctx.stats.stationary_iterations += nchunks
    ctx.stats.stationary_elements_read += total_sta
    ctx.stats.intersection_probes += total_sta
    ctx.traffic.sta_bytes += total_sta * eb
    _flush_dram(ctx.dram, "sta_read_bytes", total_sta * eb, int(np.count_nonzero(sta_b)))

    ctx.stats.streaming_elements_read += total_streamed
    ctx.traffic.str_bytes += total_streamed * eb
    ctx.stats.multiplications += int(mults_b.sum())
    ctx.stats.merge_passes += nchunks

    total_chunk_out = int(chunk_out.sum())
    ctx.stats.psum_writes += total_chunk_out
    ctx.traffic.psum_bytes += total_chunk_out * eb
    _flush_dram(
        ctx.dram,
        "output_write_bytes",
        int(out_bytes_b.sum()),
        int(np.count_nonzero(out_bytes_b)),
    )
    miss_bytes_b = miss_b * cfg.str_cache_line_bytes
    _flush_dram(
        ctx.dram,
        "str_read_bytes",
        total_misses * cfg.str_cache_line_bytes,
        int(np.count_nonzero(miss_bytes_b)),
    )

    ctx.cycles.stationary = ordered_sum(
        np.maximum(sta_b / cfg.distribution_bandwidth, (sta_b * eb) / bpc),
        ctx.cycles.stationary,
    )
    compute_b = np.maximum(
        streamed_b / cfg.distribution_bandwidth, mults_b / cfg.reduction_bandwidth
    )
    dram_b = (miss_bytes_b + out_bytes_b) / bpc + miss_b * cfg.exposed_miss_latency_cycles
    ctx.cycles.streaming = ordered_sum(
        np.maximum(compute_b, dram_b) + 1, ctx.cycles.streaming
    )

    # Final merge of the per-chunk partial fibers of every multi-chunk row.
    if not np.any(multi_b):
        return
    multi_rows = rows[row_nnz[rows] > P]
    nmulti = len(multi_rows)
    out_prefix = np.concatenate(([0], np.cumsum(chunk_out)))
    row_first_chunk = np.concatenate(
        ([0], np.cumsum(chunks_per_row)))
    multi_mask_rows = row_nnz[rows] > P
    starts = row_first_chunk[:-1][multi_mask_rows]
    ends = row_first_chunk[1:][multi_mask_rows]
    total_in = out_prefix[ends] - out_prefix[starts]

    total_inputs = int(total_in.sum())
    ctx.stats.psum_reads += total_inputs
    ctx.traffic.psum_bytes += total_inputs * eb
    ctx.stats.merge_passes += nmulti

    row_out_bytes = ctx.c_row_nnz[multi_rows] * eb
    _flush_dram(
        ctx.dram,
        "output_write_bytes",
        int(row_out_bytes.sum()),
        int(np.count_nonzero(row_out_bytes)),
    )

    # PSRAM occupancy per row: blocks of every chunk's partial fiber.
    blocks_per_chunk = np.ceil(chunk_out / cfg.psram_elements_per_block).astype(np.int64)
    blocks_prefix = np.concatenate(([0], np.cumsum(blocks_per_chunk)))
    row_blocks = blocks_prefix[ends] - blocks_prefix[starts]
    spill_bytes = np.maximum(0, row_blocks - cfg.psram_blocks) * cfg.psram_block_bytes
    total_spill = int(spill_bytes.sum())
    if total_spill:
        _flush_dram(
            ctx.dram,
            "psum_spill_bytes",
            total_spill,
            int(np.count_nonzero(spill_bytes)),
        )

    # Merging cycles: per row, max(compute, dram) followed by the spill
    # penalty when the row overflowed the PSRAM — interleaved in row order
    # to reproduce the reference's accumulation sequence.
    merge_main = np.maximum(
        total_in / cfg.reduction_bandwidth + ctx.tree_depth, row_out_bytes / bpc
    )
    merge_spill = 2 * spill_bytes / bpc
    interleaved = np.empty(2 * nmulti, dtype=np.float64)
    interleaved[0::2] = merge_main
    interleaved[1::2] = merge_spill
    keep = np.empty(2 * nmulti, dtype=bool)
    keep[0::2] = True
    keep[1::2] = spill_bytes > 0
    ctx.cycles.merging = ordered_sum(interleaved[keep], ctx.cycles.merging)
