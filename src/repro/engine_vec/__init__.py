"""Vectorized SpMSpM engine backend.

This package is the second execution backend of
:class:`repro.accelerators.engine.SpmspmEngine`.  The reference backend walks
the element streams of a dataflow one batch at a time in Python and drives a
per-line set-associative cache model; the vectorized backend computes the
same quantities with NumPy array kernels over the zero-copy CSR/CSC storage
views (``pointers`` / ``indices`` / ``values``) of
:class:`~repro.sparse.formats.CompressedMatrix`, never materialising
``Fiber`` / ``Element`` objects.

Fidelity contract
-----------------
The backend is **bit-equivalent** to the reference engine: for any operand
pair, dataflow and configuration, the resulting
:class:`~repro.metrics.results.LayerSimResult` — cycles (including the exact
floating-point accumulation), traffic breakdowns, cache access/hit/miss
counts, DRAM counters and PSRAM statistics — is *equal*, not merely close.
That holds because nothing is approximated:

* **Operation counts** (multiplications, merge inputs, union/output sizes)
  are exact integers computed with vectorized prefix sums and grouped
  distinct-coordinate counts instead of per-element walks.
* **Cache behaviour** is computed by an *offline but exact* LRU model
  (:mod:`repro.engine_vec.cache_model`): the full line-address trace of a
  layer is expanded from the fiber spans, and per-access hits are derived
  from LRU stack distances (a batched per-set reuse-distance computation),
  which provably reproduces the per-line walk of
  :class:`~repro.arch.memory.cache.StreamingCache`.
* **Cycle accumulation order** is preserved: per-batch cycle terms are
  computed as float64 arrays with the same expression shapes and then summed
  in the reference's iteration order, so the floating-point results are
  identical bit for bit.
* The **merging-phase model** (partial-fiber merge trees) is computed
  analytically from fiber lengths, shared verbatim with the reference
  backend.

Selection
---------
The backend is chosen via ``ExperimentSettings.engine``, the
``REPRO_ENGINE`` environment variable or ``python -m repro --engine``
(default: ``vectorized``; ``reference`` is kept for auditing).  The runtime's
job cache keys deliberately do *not* include the backend — both backends
must produce identical results (enforced by ``tests/test_engine_equivalence``),
so cached results are shared between them.
"""

from __future__ import annotations

from repro import knobs

#: The available engine backends, in preference order.
ENGINE_BACKENDS = ("vectorized", "reference")

#: Backend used when neither the caller nor the environment chooses one.
DEFAULT_ENGINE_BACKEND = "vectorized"


def validate_engine_backend(name: str) -> str:
    """Check that ``name`` is a known backend; return it unchanged."""
    if name not in ENGINE_BACKENDS:
        raise ValueError(
            f"unknown engine backend {name!r}; expected one of {ENGINE_BACKENDS}"
        )
    return name


def resolve_engine_backend(name: str | None = None) -> str:
    """Resolve an engine-backend choice to a validated backend name.

    ``None`` falls back to the ``REPRO_ENGINE`` environment variable and then
    to :data:`DEFAULT_ENGINE_BACKEND`.
    """
    return validate_engine_backend(
        name or knobs.get("REPRO_ENGINE") or DEFAULT_ENGINE_BACKEND
    )


__all__ = [
    "ENGINE_BACKENDS",
    "DEFAULT_ENGINE_BACKEND",
    "resolve_engine_backend",
    "validate_engine_backend",
]
