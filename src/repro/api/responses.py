"""Typed, JSON-round-trippable response records of the public API.

Every answer a :class:`~repro.api.session.Session` produces is one of these
records: plain data, stamped with the result-schema version, serializable
with ``to_json`` and reconstructible with ``from_json``.  That makes the
responses safe to persist, diff byte-for-byte (the acceptance contract of
the ``python -m repro figure`` CLI) and ship across process or service
boundaries — the groundwork the ROADMAP's serving front-end and remote
executors plug into.

Rows are normalised to JSON-safe values on construction (enums to their
string values, numpy scalars to Python numbers), so ``to_json`` can never
fail on a row a harness row-maker produced.
"""

from __future__ import annotations

import enum
import json
import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.accelerators.cpu import CpuRunResult
from repro.metrics.results import (
    RESULT_SCHEMA_VERSION,
    LayerSimResult,
    Row,
    RowValue,
    check_record_schema,
)


def canonical_json(record: object, *, indent: int | None = 2) -> str:
    """Serialize a record to the canonical wire form of the public API.

    Sorted keys make two serializations of equal records byte-identical (the
    contract the CLI's byte-stability check and the serving front-end's
    ``ETag`` handling rely on); ``allow_nan=False`` keeps the payload strict
    JSON for any consumer.
    """
    return json.dumps(record, sort_keys=True, indent=indent, allow_nan=False)


def _jsonify_value(value: object) -> RowValue:
    """Coerce one row value to a strictly-JSON-safe Python scalar."""
    if isinstance(value, enum.Enum):
        inner = value.value
        return inner if isinstance(inner, (str, int, float)) else value.name
    item = getattr(value, "item", None)
    if not isinstance(value, (bool, int, float, str)) and value is not None:
        if callable(item):  # numpy scalars
            value = item()
        else:
            return str(value)
    if isinstance(value, float) and not math.isfinite(value):
        # json.dumps would emit the non-standard Infinity/NaN tokens, which
        # strict JSON consumers reject; an unbounded or undefined quantity
        # (e.g. a speed-up over a zero-cycle baseline) becomes null instead.
        return None
    return value


def jsonify_rows(rows: Iterable[dict]) -> list[Row]:
    """Normalise row dicts so they serialize (and round-trip) as strict JSON."""
    return [{key: _jsonify_value(value) for key, value in row.items()} for row in rows]


@dataclass
class FigureResult:
    """The rows of one reproduced figure or table, plus their provenance."""

    #: Canonical figure identifier (e.g. ``"fig12"``).
    figure: str
    #: Human-readable title (printed above rendered tables).
    title: str
    #: The figure's rows (JSON-safe).
    rows: list[Row]
    #: Record form of the :class:`~repro.experiments.ExperimentSettings`
    #: the rows were computed under.
    settings: dict = field(default_factory=dict)

    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "figure",
            "figure": self.figure,
            "title": self.title,
            "settings": self.settings,
            "rows": self.rows,
        }

    @classmethod
    def from_record(cls, record: dict) -> "FigureResult":
        """Inverse of :meth:`to_record`."""
        check_record_schema(record, "figure")
        return cls(
            figure=record["figure"],
            title=record["title"],
            rows=record["rows"],
            settings=record["settings"],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a canonical, strict JSON string (sorted keys, so two
        runs of the same query over the same settings compare byte-for-byte;
        ``allow_nan=False`` guards the wire contract)."""
        return canonical_json(self.to_record(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "FigureResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_record(json.loads(payload))


@dataclass
class SweepResult:
    """One row per simulated (workload, design) point of a sweep."""

    #: Record form of the :class:`~repro.api.requests.SweepSpec` that ran.
    spec: dict
    #: One JSON-safe row per job, in grid order.
    rows: list[Row]
    #: Record form of the settings the sweep was compiled under.
    settings: dict = field(default_factory=dict)

    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "sweep",
            "spec": self.spec,
            "settings": self.settings,
            "rows": self.rows,
        }

    @classmethod
    def from_record(cls, record: dict) -> "SweepResult":
        """Inverse of :meth:`to_record`."""
        check_record_schema(record, "sweep")
        return cls(spec=record["spec"], rows=record["rows"], settings=record["settings"])

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a canonical, strict JSON string."""
        return canonical_json(self.to_record(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "SweepResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_record(json.loads(payload))


@dataclass
class DseResult:
    """The Pareto report of one design-space-exploration campaign.

    Three sections, all deterministic under a fixed (spec, settings) pair:
    per-(workload, design point) ``rows``, per-design-point aggregate
    ``points`` carrying the analytical area/power, and the ``frontier``
    mapping each objective pair to the design-point names on its Pareto
    front (``cycles_vs_area``, ``cycles_vs_power``).
    """

    #: Record form of the :class:`~repro.dse.explore.DseSpec` that ran.
    spec: dict
    #: One JSON-safe row per (workload, design point), in grid order.
    rows: list[Row]
    #: One aggregate row per design point (cycles, area, power, perf/area).
    points: list[Row]
    #: Objective-pair name -> design-point names on the Pareto front.
    frontier: dict[str, list[str]]
    #: Record form of the settings the campaign was compiled under.
    settings: dict = field(default_factory=dict)

    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form."""
        return {
            "schema": RESULT_SCHEMA_VERSION,
            "kind": "dse",
            "spec": self.spec,
            "settings": self.settings,
            "rows": self.rows,
            "points": self.points,
            "frontier": self.frontier,
        }

    @classmethod
    def from_record(cls, record: dict) -> "DseResult":
        """Inverse of :meth:`to_record`."""
        check_record_schema(record, "dse")
        return cls(
            spec=record["spec"],
            rows=record["rows"],
            points=record["points"],
            frontier=record["frontier"],
            settings=record["settings"],
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        """Serialize to a canonical, strict JSON string."""
        return canonical_json(self.to_record(), indent=indent)

    @classmethod
    def from_json(cls, payload: str) -> "DseResult":
        """Inverse of :meth:`to_json`."""
        return cls.from_record(json.loads(payload))


def sweep_row(meta: dict[str, str], result: object, *, config=None) -> Row:
    """Flatten one grid result into a labelled, JSON-safe sweep row.

    Accelerator jobs yield :class:`~repro.metrics.results.LayerSimResult`
    records; CPU-baseline jobs yield
    :class:`~repro.accelerators.cpu.CpuRunResult` records with a reduced
    column set (the software baseline has no dataflow or on-chip traffic).
    ``config`` (the job's accelerator configuration) converts accelerator
    cycles to wall-clock seconds so rows compare against the CPU baseline.
    """
    row: Row = {
        "model": meta["model"],
        "layer": meta["layer"],
        "design": meta["design"],
    }
    if isinstance(result, CpuRunResult):
        row.update(
            {
                "dataflow": None,
                "cycles": float(result.cycles),
                "seconds": float(result.seconds),
            }
        )
        return row
    assert isinstance(result, LayerSimResult), type(result)
    row.update(
        {
            "dataflow": result.dataflow.name,
            "cycles": float(result.total_cycles),
            "seconds": (
                float(config.cycles_to_seconds(result.total_cycles))
                if config is not None
                else None
            ),
            "stationary_cycles": float(result.cycles.stationary),
            "streaming_cycles": float(result.cycles.streaming),
            "merging_cycles": float(result.cycles.merging),
            "sta_bytes": int(result.traffic.sta_bytes),
            "str_bytes": int(result.traffic.str_bytes),
            "psum_bytes": int(result.traffic.psum_bytes),
            "onchip_bytes": int(result.traffic.onchip_bytes),
            "offchip_bytes": int(result.traffic.offchip_bytes),
            "psum_spill_bytes": int(result.dram.psum_spill_bytes) if result.dram else 0,
            "miss_rate_pct": 100.0 * float(result.str_cache_miss_rate),
            "str_cache_accesses": int(result.str_cache_accesses),
        }
    )
    return row
