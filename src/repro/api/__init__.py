"""The public API facade of the Flexagon reproduction.

Everything a consumer needs funnels through four concepts:

* :class:`Session` — the single object users construct; owns the experiment
  settings, the batched runner and the persistent result cache.
* :class:`SweepSpec` / :class:`FigureQuery` / :class:`DseSpec` — declarative,
  hashable request objects that compile down to
  :class:`~repro.runtime.SimJob` grids and are answered straight from the
  cache when it is warm.
* :class:`FigureResult` / :class:`SweepResult` / :class:`DseResult` — typed,
  JSON-round-trippable response records (versioned schema) that can cross
  process and service boundaries.
* ``python -m repro`` — the CLI over the same facade (``figure``, ``sweep``,
  ``dse``, ``cache stats|clear|prune``, ``list``).

Quick tour::

    from repro.api import FigureQuery, Session, SweepSpec

    session = Session()
    print(session.figure(FigureQuery("fig12")).to_json())
    sweep = session.sweep(SweepSpec(models="SQ", designs=("Flexagon",)))
"""

from repro.api.figures import FIGURES, FigureDef, figure_ids, get_figure
from repro.api.requests import (
    SWEEPABLE_DESIGNS,
    FigureQuery,
    SweepSpec,
    normalize_figure_id,
)
from repro.api.responses import (
    DseResult,
    FigureResult,
    SweepResult,
    canonical_json,
    jsonify_rows,
    sweep_row,
)
from repro.api.session import (
    Session,
    default_session,
    reset_shared_sessions,
    shared_session,
)
from repro.dse.explore import DseSpec, dse_report_key

__all__ = [
    "DseResult",
    "DseSpec",
    "dse_report_key",
    "FIGURES",
    "FigureDef",
    "figure_ids",
    "get_figure",
    "SWEEPABLE_DESIGNS",
    "FigureQuery",
    "SweepSpec",
    "normalize_figure_id",
    "FigureResult",
    "SweepResult",
    "canonical_json",
    "jsonify_rows",
    "sweep_row",
    "Session",
    "default_session",
    "reset_shared_sessions",
    "shared_session",
]
