"""The public API facade of the Flexagon reproduction.

Everything a consumer needs funnels through four concepts:

* :class:`Session` — the single object users construct; owns the experiment
  settings, the batched runner and the persistent result cache.
* :class:`SweepSpec` / :class:`FigureQuery` — declarative, hashable request
  objects that compile down to :class:`~repro.runtime.SimJob` grids and are
  answered straight from the cache when it is warm.
* :class:`FigureResult` / :class:`SweepResult` — typed, JSON-round-trippable
  response records (versioned schema) that can cross process and service
  boundaries.
* ``python -m repro`` — the CLI over the same facade (``figure``, ``sweep``,
  ``cache stats|clear|prune``, ``list``).

Quick tour::

    from repro.api import FigureQuery, Session, SweepSpec

    session = Session()
    print(session.figure(FigureQuery("fig12")).to_json())
    sweep = session.sweep(SweepSpec(models="SQ", designs=("Flexagon",)))
"""

from repro.api.figures import FIGURES, FigureDef, figure_ids, get_figure
from repro.api.requests import (
    SWEEPABLE_DESIGNS,
    FigureQuery,
    SweepSpec,
    normalize_figure_id,
)
from repro.api.responses import (
    FigureResult,
    SweepResult,
    canonical_json,
    jsonify_rows,
    sweep_row,
)
from repro.api.session import (
    Session,
    default_session,
    reset_shared_sessions,
    shared_session,
)

__all__ = [
    "FIGURES",
    "FigureDef",
    "figure_ids",
    "get_figure",
    "SWEEPABLE_DESIGNS",
    "FigureQuery",
    "SweepSpec",
    "normalize_figure_id",
    "FigureResult",
    "SweepResult",
    "canonical_json",
    "jsonify_rows",
    "sweep_row",
    "Session",
    "default_session",
    "reset_shared_sessions",
    "shared_session",
]
