"""Declarative request objects of the public API.

A request is plain, hashable data describing *what* to compute, decoupled
from *how* it is executed:

* :class:`SweepSpec` — a grid of (model | representative layer) x design
  simulations, optionally with accelerator-configuration overrides and a
  pinned operand scale.  It compiles down to the flat
  :class:`~repro.runtime.SimJob` grid the batched runtime executes.
* :class:`FigureQuery` — "give me the rows of figure/table X of the paper",
  resolved against the figure registry (:mod:`repro.api.figures`).

Because requests are frozen and content-hashable (:meth:`SweepSpec.key`),
they can identify cached work across processes and, later, travel to remote
executors — the same design that makes :class:`~repro.runtime.SimJob`
cache-addressable.
"""

from __future__ import annotations

import hashlib
import json
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, fields as dataclass_fields, replace

from repro.experiments.end_to_end import sample_model_chain
from repro.experiments.settings import ExperimentSettings
from repro.arch.config import AcceleratorConfig
from repro.runtime import CPU_DESIGN, DESIGN_ORDER, SimJob
from repro.workloads.models import MODEL_REGISTRY, get_model
from repro.workloads.representative import REPRESENTATIVE_LAYERS, get_representative_layer

#: Configuration fields a sweep may override (every scalar field of
#: :class:`AcceleratorConfig`; the nested DRAM record is not sweepable).
_OVERRIDABLE_CONFIG_FIELDS = frozenset(
    f.name for f in dataclass_fields(AcceleratorConfig) if f.name != "dram"
)

#: Designs a sweep may name (the four accelerators plus the CPU baseline).
SWEEPABLE_DESIGNS = DESIGN_ORDER + (CPU_DESIGN,)


def _names_tuple(value: str | Iterable[str] | None) -> tuple[str, ...]:
    """Normalise a name list argument ("SQ", ["SQ", "V"], None) to a tuple."""
    if value is None:
        return ()
    if isinstance(value, str):
        return tuple(part.strip() for part in value.split(",") if part.strip())
    return tuple(value)


def _overrides_tuple(
    value: Mapping[str, object] | Iterable[tuple[str, object]] | None,
) -> tuple[tuple[str, object], ...]:
    """Normalise configuration overrides to a sorted tuple of pairs."""
    if value is None:
        return ()
    items = value.items() if isinstance(value, Mapping) else value
    return tuple(sorted((str(name), val) for name, val in items))


@dataclass(frozen=True)
class SweepSpec:
    """A declarative (workloads x designs x config overrides) simulation grid.

    Workloads are named either by Table 2 model short name (``models``,
    expanded to their sampled layer chains under the session's settings) or
    by Table 6 representative layer name (``layers``).  Constructor arguments
    are normalised, so ``SweepSpec(models="SQ,V")``,
    ``SweepSpec(models=["SQ", "V"])`` and
    ``SweepSpec(config_overrides={"num_multipliers": 16})`` all work and
    produce hashable, order-canonical specs.
    """

    #: Designs to simulate (any of the four accelerators plus ``CPU-MKL``).
    designs: tuple[str, ...] = DESIGN_ORDER
    #: Table 2 model short names whose (sampled) layer chains to sweep.
    models: tuple[str, ...] = ()
    #: Table 6 representative layer names to sweep.
    layers: tuple[str, ...] = ()
    #: Accelerator-configuration overrides applied over the session settings'
    #: config (stored as a sorted tuple of pairs so the spec stays hashable).
    #: Overriding ``num_multipliers`` re-derives ``num_adders`` automatically
    #: unless it is overridden too.
    config_overrides: tuple[tuple[str, object], ...] = ()
    #: Operand scale factor.  ``None`` (default) applies the session
    #: settings' MAC-budget scaling policy (and scales the SRAM capacities to
    #: match); an explicit value pins the operand scale and leaves the
    #: configuration unscaled — the ablation-sweep semantics.
    scale: float | None = None
    #: Cap on sampled layers per model (``None``: the settings' cap).
    max_layers_per_model: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "designs", _names_tuple(self.designs))
        object.__setattr__(self, "models", _names_tuple(self.models))
        object.__setattr__(self, "layers", _names_tuple(self.layers))
        object.__setattr__(
            self, "config_overrides", _overrides_tuple(self.config_overrides)
        )
        if not self.designs:
            raise ValueError("a sweep needs at least one design")
        for design in self.designs:
            if design not in SWEEPABLE_DESIGNS:
                raise ValueError(
                    f"unknown design {design!r}; expected one of {SWEEPABLE_DESIGNS}"
                )
        if not self.models and not self.layers:
            raise ValueError("a sweep needs at least one model or layer")
        for model in self.models:
            if model not in MODEL_REGISTRY:
                from repro.dse.workloads import has_workload

                hint = (
                    f"; {model!r} is a registered DSE workload — "
                    "run it with `python -m repro dse`"
                    if has_workload(model)
                    else ""
                )
                raise ValueError(
                    f"unknown model {model!r}; expected one of "
                    f"{tuple(MODEL_REGISTRY)}{hint}"
                )
        known_layers = {spec.name for spec in REPRESENTATIVE_LAYERS}
        for layer in self.layers:
            if layer not in known_layers:
                raise ValueError(
                    f"unknown layer {layer!r}; expected one of {sorted(known_layers)}"
                )
        for name, _value in self.config_overrides:
            if name not in _OVERRIDABLE_CONFIG_FIELDS:
                raise ValueError(
                    f"unknown config override {name!r}; expected one of "
                    f"{sorted(_OVERRIDABLE_CONFIG_FIELDS)}"
                )
        if self.scale is not None and self.scale <= 0:
            raise ValueError("scale must be positive")
        if self.max_layers_per_model is not None and self.max_layers_per_model < 1:
            raise ValueError("max_layers_per_model must be positive")

    # ------------------------------------------------------------------
    def compile(
        self, settings: ExperimentSettings
    ) -> tuple[list[SimJob], list[dict[str, str]]]:
        """Lower the spec to a flat job grid under ``settings``.

        Returns the jobs plus one metadata dict per job (``model``, ``layer``,
        ``design``) that the response record uses to label result rows.
        """
        overrides = dict(self.config_overrides)
        if overrides:
            if "num_multipliers" in overrides and "num_adders" not in overrides:
                overrides["num_adders"] = overrides["num_multipliers"] - 1
            settings = replace(settings, config=replace(settings.config, **overrides))

        workloads: list[tuple[str, object, float, object]] = []  # (model, spec, scale, config)
        for name in self.layers:
            spec = get_representative_layer(name)
            scale = self.scale if self.scale is not None else settings.layer_scale(spec)
            config = settings.config if self.scale is not None else settings.scaled_config(scale)
            workloads.append(("", spec, scale, config))
        for name in self.models:
            sampled, scale, config = sample_model_chain(
                get_model(name), settings, self.max_layers_per_model
            )
            if self.scale is not None:
                # A pinned scale overrides the chain policy's scale and keeps
                # the (possibly overridden) configuration unscaled.
                scale, config = self.scale, settings.config
            for spec in sampled:
                workloads.append((name, spec, scale, config))

        jobs: list[SimJob] = []
        meta: list[dict[str, str]] = []
        for model_name, spec, scale, config in workloads:
            seed = spec.deterministic_seed(settings.seed_salt)
            for design in self.designs:
                jobs.append(
                    SimJob(
                        design=design,
                        config=config,
                        spec=spec,
                        scale=scale,
                        seed=seed,
                        layer_name=spec.name,
                        engine=settings.engine,
                    )
                )
                meta.append({"model": model_name, "layer": spec.name, "design": design})
        return jobs, meta

    # ------------------------------------------------------------------
    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form."""
        return {
            "designs": list(self.designs),
            "models": list(self.models),
            "layers": list(self.layers),
            "config_overrides": [list(pair) for pair in self.config_overrides],
            "scale": self.scale,
            "max_layers_per_model": self.max_layers_per_model,
        }

    @classmethod
    def from_record(cls, record: dict) -> "SweepSpec":
        """Inverse of :meth:`to_record`."""
        fields_ = dict(record)
        fields_["config_overrides"] = [tuple(pair) for pair in fields_["config_overrides"]]
        return cls(**fields_)

    def key(self) -> str:
        """Stable content hash identifying this spec across processes."""
        encoded = json.dumps(self.to_record(), sort_keys=True)
        return hashlib.sha256(encoded.encode()).hexdigest()


@dataclass(frozen=True)
class FigureQuery:
    """A request for the rows of one reproduced figure or table.

    The identifier is normalised on construction, so ``FigureQuery("fig12")``,
    ``FigureQuery("Fig. 12")`` and ``FigureQuery("12")`` all name the same
    figure.  Resolution against the registry happens when a
    :class:`~repro.api.session.Session` answers the query, so constructing a
    query for an unknown figure fails fast only at answer time.
    """

    figure: str

    def __post_init__(self) -> None:
        object.__setattr__(self, "figure", normalize_figure_id(self.figure))

    def to_record(self) -> dict[str, object]:
        """JSON-safe dict form."""
        return {"figure": self.figure}

    @classmethod
    def from_record(cls, record: dict) -> "FigureQuery":
        """Inverse of :meth:`to_record`."""
        return cls(**record)

    def key(self) -> str:
        """Stable content hash identifying this query across processes.

        The same shape as :meth:`SweepSpec.key` — the serving front-end uses
        it to coalesce concurrent identical queries and to address their
        background jobs.  A ``"kind"`` discriminator inside the hashed
        payload keeps the two request kinds' key spaces disjoint.
        """
        encoded = json.dumps({"kind": "figure", **self.to_record()}, sort_keys=True)
        return hashlib.sha256(encoded.encode()).hexdigest()


def normalize_figure_id(identifier: str) -> str:
    """Canonical figure id: lowercase, no punctuation, no leading zeros.

    ``"Fig. 12"``, ``"figure12"`` and ``"12"`` all normalise to ``"fig12"``;
    ``"fig01"`` normalises to ``"fig1"``.
    """
    cleaned = "".join(ch for ch in identifier.lower() if ch.isalnum())
    if cleaned.startswith("figure"):
        cleaned = "fig" + cleaned[len("figure"):]
    if cleaned.isdigit():
        cleaned = f"fig{cleaned}"
    prefix = cleaned.rstrip("0123456789")
    number = cleaned[len(prefix):]
    if not prefix or not number:
        raise ValueError(f"not a figure identifier: {identifier!r}")
    return f"{prefix}{int(number)}"
