"""Registry of the reproduced figures and tables a session can answer.

Every figure/table of the paper's evaluation is declared here as a
:class:`FigureDef`: which shared experiment it needs (the end-to-end grid,
the layer-wise grid, the area model, or nothing at all) and the row maker
that slices that experiment's results into the figure's rows.  The
:class:`~repro.api.session.Session` facade resolves a
:class:`~repro.api.requests.FigureQuery` against this registry, runs (or
cache-loads) the required experiment once, and wraps the rows in a
:class:`~repro.api.responses.FigureResult`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.dataflows import taxonomy_table, transition_table
from repro.experiments.area import area_power_rows, naive_comparison_rows
from repro.experiments.end_to_end import (
    best_dataflow_per_layer_rows,
    end_to_end_speedup_rows,
    model_statistics_rows,
    performance_per_area_rows,
)
from repro.experiments.layerwise import (
    layerwise_speedup_rows,
    miss_rate_rows,
    offchip_traffic_rows,
    onchip_traffic_rows,
)
from repro.workloads.layers import layer_summary
from repro.workloads.representative import REPRESENTATIVE_LAYERS


@dataclass(frozen=True)
class FigureDef:
    """One entry of the figure registry."""

    #: Canonical identifier (e.g. ``"fig12"`` — see ``normalize_figure_id``).
    figure: str
    #: Human-readable title printed above tables.
    title: str
    #: Which shared experiment the rows are sliced from: ``"end_to_end"``,
    #: ``"layerwise"``, ``"area"`` (needs only the accelerator config) or
    #: ``"static"`` (pure taxonomy/registry data, no simulation at all).
    kind: str
    #: Row maker; its argument depends on ``kind`` (results object, config,
    #: or nothing).
    rows: Callable


def _table6_rows():
    return [layer_summary(spec) for spec in REPRESENTATIVE_LAYERS]


def _table4_rows():
    return transition_table().as_rows()


_DEFINITIONS = (
    FigureDef("fig1", "Fig. 1 — best dataflow per layer",
              "end_to_end", best_dataflow_per_layer_rows),
    FigureDef("fig12", "Fig. 12 — end-to-end speed-up over CPU MKL",
              "end_to_end", end_to_end_speedup_rows),
    FigureDef("fig13", "Fig. 13 — layer-wise speed-up vs SIGMA-like",
              "layerwise", layerwise_speedup_rows),
    FigureDef("fig14", "Fig. 14 — on-chip memory traffic (MB)",
              "layerwise", onchip_traffic_rows),
    FigureDef("fig15", "Fig. 15 — STR cache miss rate (%)",
              "layerwise", miss_rate_rows),
    FigureDef("fig16", "Fig. 16 — off-chip traffic (KB)",
              "layerwise", offchip_traffic_rows),
    FigureDef("fig17", "Fig. 17 — Flexagon vs naive triple-network design (mm2)",
              "area", naive_comparison_rows),
    FigureDef("fig18", "Fig. 18 — performance/area normalised to SIGMA-like",
              "end_to_end", performance_per_area_rows),
    FigureDef("table2", "Table 2 — DNN models used in this work",
              "end_to_end", model_statistics_rows),
    FigureDef("table3", "Table 3 — dataflow taxonomy",
              "static", taxonomy_table),
    FigureDef("table4", "Table 4 — transitions without explicit conversion",
              "static", _table4_rows),
    FigureDef("table6", "Table 6 — representative DNN layers",
              "static", _table6_rows),
    FigureDef("table8", "Table 8 — area (mm2) and power (mW) breakdown",
              "area", area_power_rows),
)

#: Canonical figure id -> definition, in paper order.
FIGURES: dict[str, FigureDef] = {definition.figure: definition for definition in _DEFINITIONS}


def figure_ids() -> list[str]:
    """Every answerable figure/table identifier, in paper order."""
    return list(FIGURES)


def get_figure(figure: str) -> FigureDef:
    """Look one definition up by canonical id (raises ``KeyError`` with help)."""
    try:
        return FIGURES[figure]
    except KeyError:
        raise KeyError(
            f"unknown figure {figure!r}; known figures: {', '.join(FIGURES)}"
        ) from None
