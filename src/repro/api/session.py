"""The :class:`Session` facade: one object over settings, runner and cache.

A session owns the three pieces every consumer of the reproduction needs —
an :class:`~repro.experiments.ExperimentSettings`, a
:class:`~repro.runtime.BatchRunner` and (through the runner) a
:class:`~repro.runtime.ResultCache` — and exposes the public operations:

* :meth:`Session.figure` — answer a :class:`~repro.api.requests.FigureQuery`
  (e.g. ``session.figure("fig12")``).  When the runtime cache is warm the
  answer involves **zero** simulator executions.
* :meth:`Session.sweep` — run a declarative
  :class:`~repro.api.requests.SweepSpec` grid.
* :meth:`Session.end_to_end` / :meth:`Session.layerwise` — the two shared
  experiment grids behind the paper's figures, memoized per session.
* :meth:`Session.simulate` — ad-hoc simulation of one explicit operand pair
  across designs (the quickstart workflow).
* :meth:`Session.cache_stats` / :meth:`Session.clear_cache` /
  :meth:`Session.prune_cache` — result-cache maintenance.
"""

from __future__ import annotations

import threading

from repro.api.figures import FigureDef, figure_ids, get_figure
from repro.api.requests import FigureQuery, SweepSpec
from repro.api.responses import (
    DseResult,
    FigureResult,
    SweepResult,
    jsonify_rows,
    sweep_row,
)
from repro.dse.explore import DseSpec, collate_dse, dse_report_key
from repro.arch.config import AcceleratorConfig
from repro.experiments.end_to_end import (
    EndToEndResults,
    collate_end_to_end,
    end_to_end_jobs,
)
from repro.experiments.layerwise import (
    LayerwiseResults,
    collate_layerwise,
    layerwise_jobs,
)
from repro.experiments.settings import ExperimentSettings, default_settings
from repro.metrics.results import LayerSimResult
from repro.runtime import (
    DESIGN_ORDER,
    BatchRunner,
    PruneReport,
    ResultCache,
    RunnerStats,
    SimJob,
    default_runner,
)
from repro.sparse.formats import CompressedMatrix

#: Sentinel so ``cache=None`` can explicitly mean "run without a cache".
_DEFAULT = object()


class Session:
    """Facade over the experiment settings, batch runner and result cache.

    Construct one per logical unit of work::

        from repro.api import Session, FigureQuery

        session = Session()                       # env-configured runner+cache
        fig12 = session.figure(FigureQuery("fig12"))
        print(fig12.to_json())

    ``runner`` wins when given; otherwise a :class:`BatchRunner` is built
    from ``parallel`` / ``max_workers`` / ``cache`` (each defaulting to the
    environment knobs documented in :mod:`repro.runtime.runner`).
    """

    def __init__(
        self,
        settings: ExperimentSettings | None = None,
        *,
        runner: BatchRunner | None = None,
        parallel: bool | None = None,
        max_workers: int | None = None,
        cache: ResultCache | None | object = _DEFAULT,
    ) -> None:
        self.settings = settings or default_settings()
        if runner is None:
            kwargs: dict = {"parallel": parallel, "max_workers": max_workers}
            if cache is not _DEFAULT:
                kwargs["cache"] = cache
            runner = BatchRunner(**kwargs)
        elif parallel is not None or max_workers is not None or cache is not _DEFAULT:
            raise ValueError("pass either a runner or runner knobs, not both")
        self.runner = runner
        self._end_to_end: EndToEndResults | None = None  # guarded-by: _grid_lock
        self._layerwise: LayerwiseResults | None = None  # guarded-by: _grid_lock
        # Sessions are shared between threads (the serving front-end answers
        # every request through one), so the two grid memos are guarded: the
        # first caller computes, concurrent callers block and then reuse the
        # same results object.  Reentrant because a figure query may resolve
        # both grids in one call chain.
        self._grid_lock = threading.RLock()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cache(self) -> ResultCache | None:
        """The result cache the session's runner answers from (if any)."""
        return self.runner.cache

    @property
    def stats(self) -> RunnerStats:
        """Job counters accumulated by the session's runner."""
        return self.runner.stats

    def figures(self) -> list[str]:
        """Identifiers of every figure/table :meth:`figure` can answer."""
        return figure_ids()

    # ------------------------------------------------------------------
    # Raw job access (the escape hatch down to the runtime layer)
    # ------------------------------------------------------------------
    def run(self, jobs: list[SimJob], on_result=None) -> list:
        """Run a raw job grid through the session's runner.

        ``on_result(done, total)`` — when given (or configured runner-wide
        via ``BatchRunner(on_result=...)``) — observes batch progress live:
        once after the cache scan, then after every result that lands.
        """
        return self.runner.run(jobs, on_result=on_result)

    def simulate(
        self,
        a: CompressedMatrix,
        b: CompressedMatrix,
        *,
        designs: tuple[str, ...] = DESIGN_ORDER,
        config: AcceleratorConfig | None = None,
        layer_name: str = "",
    ) -> list[LayerSimResult]:
        """Simulate one explicit operand pair on each design, in order."""
        config = config or self.settings.config
        jobs = [
            SimJob(
                design=design,
                config=config,
                a=a,
                b=b,
                layer_name=layer_name,
                engine=self.settings.engine,
            )
            for design in designs
        ]
        return self.run(jobs)

    # ------------------------------------------------------------------
    # The shared experiment grids (memoized per session)
    # ------------------------------------------------------------------
    def end_to_end(self, on_result=None) -> EndToEndResults:
        """The end-to-end grid (Figs. 1/12/18, Table 2), run at most once.

        ``on_result(done, total)`` observes the grid run's progress when this
        call is the one that computes it; a caller that arrives while (or
        after) another thread computes the grid reuses the memo and its
        callback is never invoked.
        """
        with self._grid_lock:
            if self._end_to_end is None:
                jobs, configs, sampled_specs = end_to_end_jobs(self.settings)
                results = self.runner.run(jobs, on_result=on_result)
                self._end_to_end = collate_end_to_end(
                    self.settings, configs, sampled_specs, results
                )
            return self._end_to_end

    def layerwise(self, on_result=None) -> LayerwiseResults:
        """The layer-wise grid (Figs. 13-16), run at most once.

        ``on_result`` behaves as in :meth:`end_to_end`.
        """
        with self._grid_lock:
            if self._layerwise is None:
                jobs, scales = layerwise_jobs(self.settings)
                results = self.runner.run(jobs, on_result=on_result)
                self._layerwise = collate_layerwise(self.settings, scales, results)
            return self._layerwise

    # ------------------------------------------------------------------
    # Declarative requests
    # ------------------------------------------------------------------
    def figure(self, query: FigureQuery | str, *, on_result=None) -> FigureResult:
        """Answer one figure/table query.

        All simulation goes through the session's runner, so a warm result
        cache answers the query without executing a single job — the
        serving-from-cache behaviour of the ``python -m repro figure`` CLI.
        ``on_result(done, total)`` observes the underlying grid run live (the
        serving front-end streams it as job progress).
        """
        if not isinstance(query, FigureQuery):
            query = FigureQuery(query)
        definition = get_figure(query.figure)
        rows = self._figure_rows(definition, on_result)
        return FigureResult(
            figure=definition.figure,
            title=definition.title,
            rows=jsonify_rows(rows),
            settings=self.settings.to_record(),
        )

    def _figure_rows(self, definition: FigureDef, on_result=None) -> list[dict]:
        if definition.kind == "end_to_end":
            return definition.rows(self.end_to_end(on_result=on_result))
        if definition.kind == "layerwise":
            return definition.rows(self.layerwise(on_result=on_result))
        if definition.kind == "area":
            return definition.rows(self.settings.config)
        assert definition.kind == "static", definition.kind
        return definition.rows()

    def sweep(self, spec: SweepSpec, *, on_result=None) -> SweepResult:
        """Run a declarative sweep grid and return its labelled rows.

        ``on_result(done, total)`` observes the grid run live, exactly as in
        :meth:`run`.
        """
        jobs, meta = spec.compile(self.settings)
        results = self.runner.run(jobs, on_result=on_result)
        rows = [
            sweep_row(job_meta, result, config=job.config)
            for job_meta, job, result in zip(meta, jobs, results)
        ]
        return SweepResult(
            spec=spec.to_record(),
            rows=jsonify_rows(rows),
            settings=self.settings.to_record(),
        )

    def dse(self, spec: DseSpec, *, on_result=None) -> DseResult:
        """Run a design-space-exploration campaign and return its Pareto report.

        The (workload x design point) grid goes through the session's runner
        exactly like a sweep, so cost scheduling, crash-resume, remote
        fan-out and the result cache all apply; a warm cache answers the
        whole campaign with zero engine executions.  The rendered report
        body is persisted under :func:`dse_report_key` so the serving
        front-end's ``GET /v1/dse/<key>`` route can answer byte-identically
        without recollating — including campaigns originally run from the
        CLI against the same cache directory.
        """
        jobs, meta = spec.compile(self.settings)
        results = self.runner.run(jobs, on_result=on_result)
        report = collate_dse(spec, meta, results)
        result = DseResult(
            spec=spec.to_record(),
            rows=jsonify_rows(report["rows"]),
            points=jsonify_rows(report["points"]),
            frontier=report["frontier"],
            settings=self.settings.to_record(),
        )
        if self.cache is not None:
            body = (result.to_json() + "\n").encode()
            self.cache.put_blob(dse_report_key(spec, self.settings), body)
        return result

    def required_jobs(
        self, request: FigureQuery | SweepSpec | DseSpec | str
    ) -> list[SimJob]:
        """The simulation jobs answering ``request`` would submit right now.

        The serving front-end's warmth probe: combined with
        :meth:`ResultCache.missing` over the jobs' keys it classifies a
        request as cache-warm (answer synchronously, zero executions) or
        cold (run in the background) without executing anything.  Returns
        ``[]`` for static/area figures and for grids this session has
        already memoized.

        Deliberately does **not** take the grid lock: a probe must stay
        responsive while another thread is mid-computation, and the plain
        memo read is safe — at worst a concurrent computation finishes just
        after the read and the "required" jobs all turn out to be cache
        hits, which the serving path handles anyway.
        """
        if isinstance(request, (SweepSpec, DseSpec)):
            jobs, _meta = request.compile(self.settings)
            return jobs
        query = request if isinstance(request, FigureQuery) else FigureQuery(request)
        definition = get_figure(query.figure)
        if definition.kind == "end_to_end" and self._end_to_end is None:  # repro: allow[lock-discipline]
            return end_to_end_jobs(self.settings)[0]
        if definition.kind == "layerwise" and self._layerwise is None:  # repro: allow[lock-discipline]
            return layerwise_jobs(self.settings)[0]
        return []

    # ------------------------------------------------------------------
    # Cache maintenance
    # ------------------------------------------------------------------
    def cache_stats(self) -> dict[str, object] | None:
        """Disk-cache layout telemetry plus the session runner's counters.

        One batched scan of the cache directory (entry/byte totals, shard
        count, surviving flat legacy entries, scan wall-clock) under
        ``"cache"`` keys, and the runner's lifetime counters — including the
        ``exec_seconds`` / ``cache_scan_seconds`` / ``peak_in_flight``
        wall-clock telemetry — under ``"runner"``.  ``None`` when the session
        runs without a cache.
        """
        if self.cache is None:
            return None
        report: dict[str, object] = self.cache.stats_report()
        report["runner"] = self.stats.as_row()
        return report

    def clear_cache(self) -> int:
        """Drop every cache entry; returns how many were removed."""
        if self.cache is None:
            return 0
        return self.cache.clear()

    def prune_cache(
        self, max_size_bytes: int | None = None, *, prefix: str | None = None
    ) -> PruneReport:
        """Evict cache entries: by LRU size bound, key prefix, or both.

        See :meth:`ResultCache.prune` — ``prefix`` restricts eviction to
        keys starting with it (e.g. ``"dse-"`` drops a finished campaign's
        report bodies without touching figure results).
        """
        if self.cache is None:
            return PruneReport(0, 0, 0, 0)
        return self.cache.prune(max_size_bytes, prefix=prefix)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Session(settings={self.settings!r}, runner={self.runner!r})"


# ----------------------------------------------------------------------
# Shared sessions (what the deprecated free-function shims delegate to)
# ----------------------------------------------------------------------
#: Most settings values whose shared session is kept alive at once (the
#: bound the old ``lru_cache(maxsize=4)`` implementation enforced).
_SHARED_SESSION_LIMIT = 4

_shared_sessions: dict[ExperimentSettings, Session] = {}
_shared_sessions_lock = threading.Lock()


def shared_session(settings: ExperimentSettings) -> Session:
    """The process-wide session for one settings value.

    Backed by the process-wide :func:`~repro.runtime.default_runner`, so the
    in-process memo and the runner's stats are shared between the facade and
    any legacy free-function call sites that run the same settings.  The
    registry is lock-guarded (concurrent first calls observe one session,
    never two), LRU-bounded to :data:`_SHARED_SESSION_LIMIT` settings values
    and explicitly droppable via :func:`reset_shared_sessions`.
    """
    with _shared_sessions_lock:
        session = _shared_sessions.get(settings)
        if session is None:
            session = Session(settings, runner=default_runner())
            _shared_sessions[settings] = session
            while len(_shared_sessions) > _SHARED_SESSION_LIMIT:
                _shared_sessions.pop(next(iter(_shared_sessions)))
        else:
            # Refresh recency so the bound evicts the least recently used.
            _shared_sessions[settings] = _shared_sessions.pop(settings)
        return session


def reset_shared_sessions() -> None:
    """Drop every memoized shared session.

    Sessions capture the runner — and through it the cache directory — that
    the environment named when they were first built, so anything that
    re-points ``REPRO_CACHE_DIR``/``REPRO_*`` (the test suite's hermetic
    fixtures above all) must drop the registry or later ``shared_session``
    calls keep answering from the stale environment.  Pair with
    :func:`repro.runtime.reset_default_runners`, which this intentionally
    does not call (other live sessions may still hold the default runner).
    """
    with _shared_sessions_lock:
        _shared_sessions.clear()


def default_session() -> Session:
    """The shared session over the environment-default settings."""
    return shared_session(default_settings())
