"""The process-wide persistent worker pool behind the batch runner.

Before this module existed every :meth:`BatchRunner.run` call built a fresh
:class:`concurrent.futures.ProcessPoolExecutor` and tore it down when the
batch finished, so a figure sequence (one batch per experiment grid) paid
pool start-up per batch and threw away every per-worker memo (materialised
layers, derived operand structures) each time.  :class:`WorkerPool` keeps one
executor alive for the whole process: it is created lazily on first use,
grows when a batch asks for more workers than it was built with, is shared by
every runner in persistent mode, and is shut down atexit.

Environment knob:

* ``REPRO_POOL=persistent`` (default) — reuse one process-wide executor
  across batches.
* ``REPRO_POOL=ephemeral`` — legacy behaviour: one executor per batch
  (useful for A/B benchmarking and for workloads that must release worker
  memory between batches).
* ``REPRO_POOL=remote`` — dispatch chunks to the distributed fabric's pull
  queue instead of local processes; external ``python -m repro worker``
  processes claim and execute them (see :mod:`repro.fabric`).
"""

from __future__ import annotations

import atexit
import multiprocessing
import threading
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor

from repro import knobs

#: Valid values of the ``REPRO_POOL`` environment knob (canonical home:
#: :mod:`repro.knobs`; re-exported here for existing importers).
POOL_MODES = knobs.POOL_MODES


def pool_mode_from_env() -> str:
    """The pool mode the environment asks for (default: ``persistent``)."""
    return knobs.get("REPRO_POOL")


def pool_context():
    """Prefer fork workers: they inherit the loaded modules, so tiny jobs do
    not pay an interpreter start-up and re-import per worker."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


class WorkerPool:
    """A lazily created, growable, reusable process-pool executor.

    The underlying executor is built on the first :meth:`executor` call and
    handed back to every later caller.  Asking for *more* workers than the
    pool currently has installs a wider executor; asking for fewer just
    leaves the extra workers idle, which costs nothing while they wait.

    Safe under concurrent batches (the serving front-end runs several
    :meth:`BatchRunner.run` calls at once): creation and replacement are
    lock-guarded, and a replaced executor is *retired*, never torn down in
    place — a concurrent batch still submitting to it finishes on the old
    (narrower) pool, and the retiree is reaped by :meth:`shutdown` /
    atexit.  Growth happens at most a handful of times per process, so the
    idle retirees are a bounded cost.
    """

    def __init__(self) -> None:
        self._executor: ProcessPoolExecutor | None = None  # guarded-by: _lock
        self._width = 0  # guarded-by: _lock
        self._retired: list[ProcessPoolExecutor] = []  # guarded-by: _lock
        self._lock = threading.Lock()
        _LIVE_POOLS.add(self)

    @property
    def width(self) -> int:
        """Worker count of the live executor (0 when none exists yet)."""
        with self._lock:
            return self._width if self._executor is not None else 0

    def executor(self, max_workers: int) -> ProcessPoolExecutor:
        """The shared executor, (re)built to hold at least ``max_workers``.

        A broken executor (a worker died; the pool refuses further work) is
        replaced instead of handed back, so one crashed batch cannot
        permanently poison every later batch of the process.
        """
        if max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        with self._lock:
            if self._executor is not None and (
                self._width < max_workers
                or getattr(self._executor, "_broken", False)
            ):
                self._retired.append(self._executor)
                self._executor = None
                self._width = 0
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=max_workers, mp_context=pool_context()
                )
                self._width = max_workers
            return self._executor

    def reap_retired(self) -> int:
        """Shut down every retired executor; returns how many were reaped.

        Retirees normally drain when :meth:`shutdown` runs, but a pool that
        is never shut down — a batch crashed before its runner finished, or
        the owner simply dropped the reference — would keep the retirees'
        worker processes alive for the rest of the interpreter's life.  The
        module-level atexit sweep calls this on every surviving pool.
        """
        with self._lock:
            retirees = list(self._retired)
            self._retired = []
        for executor in retirees:
            executor.shutdown(wait=True, cancel_futures=True)
        return len(retirees)

    def shutdown(self) -> None:
        """Tear down the executor and every retiree (lazily rebuilt on use)."""
        with self._lock:
            executors = list(self._retired)
            if self._executor is not None:
                executors.append(self._executor)
            self._executor = None
            self._width = 0
            self._retired = []
        for executor in executors:
            executor.shutdown(wait=True, cancel_futures=True)


#: Every live WorkerPool, so the atexit sweep below can reach pools whose
#: owners never called shutdown().  Weak: registration must not keep a
#: dropped pool (and its executors) alive on its own.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def sweep_retired_pools() -> int:
    """Reap the retired executors of every surviving pool (atexit hook)."""
    return sum(pool.reap_retired() for pool in list(_LIVE_POOLS))


atexit.register(sweep_retired_pools)


# ----------------------------------------------------------------------
# The process-wide shared pool (what ``REPRO_POOL=persistent`` reuses)
# ----------------------------------------------------------------------
_shared_pool: WorkerPool | None = None


def shared_pool() -> WorkerPool:
    """The process-wide :class:`WorkerPool`, created on first use."""
    global _shared_pool
    if _shared_pool is None:
        _shared_pool = WorkerPool()
        atexit.register(shutdown_shared_pool)
    return _shared_pool


def shutdown_shared_pool() -> None:
    """Shut the shared pool down (registered atexit; safe to call anytime)."""
    if _shared_pool is not None:
        _shared_pool.shutdown()


def reset_shared_pool() -> None:
    """Tear down and forget the shared pool (tests use this between modes)."""
    global _shared_pool
    shutdown_shared_pool()
    _shared_pool = None


def acquire_executor(mode: str, max_workers: int) -> tuple[Executor, bool]:
    """An executor for one batch under ``mode``.

    Returns ``(executor, transient)``: when ``transient`` is true the caller
    owns the executor and must shut it down after the batch (ephemeral mode);
    otherwise the executor belongs to the shared pool and must be left alone.
    """
    if mode == "ephemeral":
        return (
            ProcessPoolExecutor(max_workers=max_workers, mp_context=pool_context()),
            True,
        )
    if mode == "remote":
        # The fabric's queue-backed executor: chunks become leasable work
        # items that external ``python -m repro worker`` processes claim over
        # HTTP.  Process-wide (like the persistent pool), hence not transient.
        from repro.fabric import runtime_executor

        return runtime_executor(), False
    if mode != "persistent":
        raise ValueError(f"unknown pool mode {mode!r}; expected one of {POOL_MODES}")
    return shared_pool().executor(max_workers), False
