"""The batched simulation runner: fan a job grid out, memoize the results.

:class:`BatchRunner` is the single entry point every sweep in this repository
goes through (the end-to-end and layer-wise experiment harnesses, the oracle
mapper's candidate trials, the examples and the benchmark suite).  It takes a
flat list of :class:`~repro.runtime.jobs.SimJob` descriptions and returns
their results in order, doing four things along the way:

1. **Cache lookup** — jobs whose key is already in the
   :class:`~repro.runtime.cache.ResultCache` are never re-executed.  The
   pre-dispatch scan is batched (:meth:`ResultCache.get_many`), one shard
   listing per needed prefix instead of one ``stat`` + ``open`` per key.
2. **Deduplication** — identical jobs appearing more than once in a batch
   are executed once; result records are immutable by contract
   (:mod:`repro.metrics.results`), so the duplicates share one record.
3. **Scheduling** — cache-missing jobs are grouped by the operand pair they
   simulate (so one worker materialises each layer exactly once) and the
   groups are dispatched longest-predicted-first
   (:mod:`repro.runtime.cost`), which keeps an expensive Flexagon straggler
   from landing at the tail of the batch.
4. **Execution** — remaining jobs run either serially (``parallel=False``,
   the determinism-checking reference) or streamed over a process pool via
   ``submit``/``as_completed``: every result is written to the cache the
   moment it lands (a crashed sweep resumes from what it finished) and an
   optional ``on_result`` callback observes batch progress live.  Jobs are
   pure functions of their inputs, so all modes produce bit-identical
   results; the parallel mode merely uses more cores.

Environment knobs (read when a runner is constructed without explicit
arguments):

* ``REPRO_PARALLEL=0``   — force serial execution.
* ``REPRO_WORKERS=N``    — process-pool width.  Default: the full
  ``os.cpu_count()``; set ``REPRO_WORKERS`` to cap it on shared machines.
* ``REPRO_POOL``         — ``persistent`` (default: one process-wide pool
  reused across batches), ``ephemeral`` (one pool per batch; see
  :mod:`repro.runtime.pool`) or ``remote`` (dispatch chunks to the
  distributed fabric's pull queue, executed by external ``python -m repro
  worker`` processes; see :mod:`repro.fabric` —
  ``REPRO_LEASE_SECONDS``/``REPRO_MAX_ATTEMPTS`` tune its leases).  All
  modes are bit-equivalent: a chunk runs the same ``execute_chunk`` path
  wherever it executes, so cache keys and result bytes never depend on
  where the work ran.
* ``REPRO_SCHED``        — ``cost`` (default: grouped, longest-first) or
  ``fifo`` (legacy submission-order static chunks).
* ``REPRO_SHARE_ENGINE=0`` — disable engine-result sharing between designs
  (see :func:`repro.runtime.jobs.build_design`).
* ``REPRO_CACHE=0``      — run without any result cache.
* ``REPRO_CACHE_DIR``    — cache directory (see :mod:`repro.runtime.cache`).
"""

from __future__ import annotations

import functools
import heapq
import math
import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass
from typing import Callable

from repro import knobs
from repro.runtime.cache import ResultCache
from repro.runtime.cost import estimate_job_cost, job_group_key
from repro.runtime.jobs import SimJob, execute_chunk, execute_job
from repro.runtime.pool import (
    acquire_executor,
    pool_mode_from_env,
    shutdown_shared_pool,
)

#: Default sentinel so ``cache=None`` can explicitly mean "no cache".
_DEFAULT = object()

#: Valid values of the ``REPRO_SCHED`` environment knob (canonical home:
#: :mod:`repro.knobs`; re-exported here for existing importers).
SCHEDULE_MODES = knobs.SCHEDULE_MODES

#: Progress callback signature: ``on_result(done_jobs, total_jobs)``.
ProgressCallback = Callable[[int, int], None]

#: Smallest chunk size the cost scheduler will split an operand group into —
#: sized to hold one layer across every design (5 jobs) with headroom, so
#: small batches keep their worker affinity instead of scattering.
_MIN_GROUP_SPLIT = 8

#: Width of the per-runner submission thread pool behind
#: :meth:`BatchRunner.submit`.  Submission threads only dispatch to (and
#: wait on) the process pool, so a handful is plenty; it bounds how many
#: batches can be in flight concurrently, not how many cores they use.
_SUBMIT_THREADS = 4


def _env_parallel() -> bool:
    return knobs.get("REPRO_PARALLEL")


def _env_workers() -> int:
    width = knobs.get("REPRO_WORKERS")
    if width is not None:
        return width
    # Use every core the machine has.  (Earlier versions silently capped
    # this at 8; set REPRO_WORKERS explicitly to bound the width instead.)
    return max(1, os.cpu_count() or 1)


def _env_schedule() -> str:
    return knobs.get("REPRO_SCHED")


def _env_cache() -> ResultCache | None:
    if not knobs.get("REPRO_CACHE"):
        return None
    return ResultCache()


@dataclass
class RunnerStats:
    """Counters a :class:`BatchRunner` accumulates over its lifetime."""

    #: Jobs handed to :meth:`BatchRunner.run` in total.
    submitted: int = 0
    #: Jobs answered from the result cache.
    cache_hits: int = 0
    #: Jobs not found in the cache.
    cache_misses: int = 0
    #: Jobs actually simulated (cache misses minus in-batch duplicates).
    executed: int = 0
    #: Wall-clock seconds spent executing jobs (serial or in the pool).
    exec_seconds: float = 0.0
    #: Wall-clock seconds spent keying jobs and scanning the cache for hits.
    cache_scan_seconds: float = 0.0
    #: Most dispatch units (chunks) simultaneously in flight in the pool.
    peak_in_flight: int = 0

    def as_row(self) -> dict[str, object]:
        """Row-form summary (for the benchmark session report)."""
        return {
            "submitted": self.submitted,
            "cache hits": self.cache_hits,
            "cache misses": self.cache_misses,
            "executed": self.executed,
            "exec seconds": round(self.exec_seconds, 3),
            "cache scan seconds": round(self.cache_scan_seconds, 3),
            "peak in flight": self.peak_in_flight,
        }


class BatchRunner:
    """Executes simulation job grids with caching and optional parallelism."""

    def __init__(
        self,
        parallel: bool | None = None,
        max_workers: int | None = None,
        cache: ResultCache | None | object = _DEFAULT,
        pool_mode: str | None = None,
        schedule: str | None = None,
        on_result: ProgressCallback | None = None,
    ) -> None:
        self.max_workers = max_workers if max_workers is not None else _env_workers()
        self.parallel = (parallel if parallel is not None else _env_parallel()) and (
            self.max_workers > 1
        )
        self.cache = _env_cache() if cache is _DEFAULT else cache
        self.pool_mode = pool_mode if pool_mode is not None else pool_mode_from_env()
        self.schedule = schedule if schedule is not None else _env_schedule()
        if self.schedule not in SCHEDULE_MODES:
            raise ValueError(
                f"schedule must be one of {SCHEDULE_MODES}, got {self.schedule!r}"
            )
        #: Default progress callback applied to every :meth:`run` call.
        self.on_result = on_result
        self.stats = RunnerStats()  # guarded-by: _stats_lock
        #: Guards the counters: :meth:`run` may be entered from several
        #: threads at once (the serving front-end's background jobs), and
        #: ``+=`` on a dataclass attribute is not atomic.
        self._stats_lock = threading.Lock()
        #: Lazily created thread pool behind :meth:`submit`.
        self._submit_pool: ThreadPoolExecutor | None = None  # guarded-by: _submit_lock
        self._submit_lock = threading.Lock()

    # ------------------------------------------------------------------
    def run(
        self, jobs: list[SimJob], on_result: ProgressCallback | None = None
    ) -> list:
        """Execute every job and return their results in submission order.

        ``on_result`` (or the runner-wide default) is called as
        ``on_result(done, total)`` once after the cache scan and then after
        every result that lands, so long sweeps can surface a live counter.
        Results stream into the cache as they complete: if the batch dies
        midway, everything finished so far is already on disk and a re-run
        only executes the remainder.
        """
        callback = on_result if on_result is not None else self.on_result
        jobs = list(jobs)
        total = len(jobs)
        with self._stats_lock:
            self.stats.submitted += total
        results: list = [None] * total

        # Batched pre-dispatch cache scan over the unique keys.
        scan_start = time.perf_counter()
        #: key -> (job, [indices that want this key's result]).
        unique: dict[str, tuple[SimJob, list[int]]] = {}
        for index, job in enumerate(jobs):
            entry = unique.setdefault(job.key(), (job, []))
            entry[1].append(index)
        hits = (
            self.cache.get_many(list(unique)) if self.cache is not None else {}
        )
        done = 0
        for key, value in hits.items():
            _job, indices = unique[key]
            for index in indices:
                results[index] = value
            with self._stats_lock:
                self.stats.cache_hits += len(indices)
            done += len(indices)
        with self._stats_lock:
            self.stats.cache_scan_seconds += time.perf_counter() - scan_start
        if callback is not None and total:
            callback(done, total)

        misses = [
            (key, job) for key, (job, _indices) in unique.items() if key not in hits
        ]
        for _key, _job in misses:
            with self._stats_lock:
                self.stats.cache_misses += len(unique[_key][1])
        if misses:
            exec_start = time.perf_counter()
            try:
                for key, outcome in self._execute_stream(misses):
                    with self._stats_lock:
                        self.stats.executed += 1
                    if self.cache is not None:
                        self.cache.put(key, outcome)
                    _job, indices = unique[key]
                    # Duplicates share the record: results are immutable by
                    # contract (frozen dataclasses, replace-based updates),
                    # so aliasing can never corrupt another slot.
                    for index in indices:
                        results[index] = outcome
                    done += len(indices)
                    if callback is not None:
                        callback(done, total)
            finally:
                with self._stats_lock:
                    self.stats.exec_seconds += time.perf_counter() - exec_start
        return results

    def submit(
        self, jobs: list[SimJob], on_result: ProgressCallback | None = None
    ) -> Future:
        """Run a job grid off the calling thread; returns a ``Future``.

        The asynchronous face of :meth:`run` for embedders driving raw job
        grids from an event loop: the batch executes on a small dedicated
        submission thread pool, so ``await
        asyncio.wrap_future(runner.submit(jobs))`` never blocks the loop,
        while ``on_result`` streams ``(done, total)`` progress from the
        submission thread.  (The ``repro.serve`` front-end goes through
        :class:`~repro.api.session.Session` instead, whose figure/sweep
        calls wrap :meth:`run` with collation — this is the equivalent hook
        for callers below the facade.)  Concurrent batches are safe — the
        counters are lock-guarded and the process pool dispatch already
        bounds each batch's in-flight window — though they share the pool's
        workers.
        """
        # Double-checked fast path: reading the installed pool without the
        # lock is safe (it is written once, under the lock, and never reset).
        pool = self._submit_pool  # repro: allow[lock-discipline]
        if pool is None:
            with self._submit_lock:
                pool = self._submit_pool
                if pool is None:
                    pool = self._submit_pool = ThreadPoolExecutor(
                        max_workers=_SUBMIT_THREADS, thread_name_prefix="repro-submit"
                    )
        return pool.submit(self.run, jobs, on_result)

    def run_one(self, job: SimJob):
        """Convenience wrapper: run a single job."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute_stream(self, misses: list[tuple[str, SimJob]]):
        """Yield ``(key, result)`` pairs as the missing jobs complete.

        Nested work (oracle trials, shared engine runs) must land in *this*
        runner's cache — not the env-default one — and must stay uncached
        when this runner was explicitly built without a cache.  In-process
        execution hands over the live cache object (keeping its in-memory
        memo warm across jobs); the pool path ships the directory instead,
        since the memo dict should not be pickled to every worker.
        """
        if not self.parallel or len(misses) < 2:
            run = functools.partial(execute_job, trial_cache=self.cache)
            if misses:
                with self._stats_lock:
                    self.stats.peak_in_flight = max(self.stats.peak_in_flight, 1)
            for chunk in self._plan_chunks(misses):
                for key, job in chunk:
                    yield key, run(job)
            return

        chunks = self._plan_chunks(misses)
        trial_dir = None if self.cache is None else str(self.cache.directory)
        workers = min(self.max_workers, len(chunks))
        executor, transient = acquire_executor(self.pool_mode, workers)
        futures = {}
        try:
            # Submit with a sliding window of at most ``workers`` chunks, so
            # the runner's width cap holds even when the shared persistent
            # pool is wider than this runner asked for — and so
            # ``peak_in_flight`` reports chunks genuinely in flight.
            pending = iter(chunks)
            outstanding: set = set()

            def submit_next() -> bool:
                chunk = next(pending, None)
                if chunk is None:
                    return False
                future = executor.submit(
                    execute_chunk, [job for _key, job in chunk], trial_cache=trial_dir
                )
                futures[future] = chunk
                outstanding.add(future)
                return True

            while len(outstanding) < workers and submit_next():
                pass
            while outstanding:
                with self._stats_lock:
                    self.stats.peak_in_flight = max(
                        self.stats.peak_in_flight, len(outstanding)
                    )
                completed, still_running = wait(
                    outstanding, return_when=FIRST_COMPLETED
                )
                outstanding = set(still_running)
                first_error: BaseException | None = None
                for future in completed:
                    chunk = futures[future]
                    try:
                        outcomes, error = future.result()
                    except BaseException as exc:
                        # Pool-level failure of this chunk (e.g. its worker
                        # was killed).  Keep draining the wave's siblings —
                        # their finished results must still reach the cache.
                        if first_error is None:
                            first_error = exc
                        continue
                    # Yield every completed result of the wave — including
                    # the failing chunk's finished prefix — before
                    # propagating a failure, so everything that finished
                    # still reaches the cache (the crash-resume contract).
                    for (key, _job), outcome in zip(chunk, outcomes):
                        yield key, outcome
                    if error is not None and first_error is None:
                        first_error = error
                if first_error is not None:
                    raise first_error
                while len(outstanding) < workers and submit_next():
                    pass
        except BaseException as exc:
            for future in futures:
                future.cancel()
            if not transient and isinstance(exc, BrokenExecutor):
                # The shared persistent pool is dead; drop it so the next
                # batch lazily rebuilds a fresh one instead of failing
                # forever (public-API counterpart of WorkerPool's own
                # broken-executor check).
                shutdown_shared_pool()
            raise
        finally:
            if transient:
                executor.shutdown(wait=True, cancel_futures=True)

    def _plan_chunks(
        self, misses: list[tuple[str, SimJob]]
    ) -> list[list[tuple[str, SimJob]]]:
        """Partition cache-missing jobs into ordered dispatch units.

        ``cost`` schedule (default): jobs are grouped by operand-pair
        identity (one worker materialises each layer once), ordered
        most-expensive-first *within* a group (so the group's Flexagon job
        caches the engine runs its siblings then hit), and the groups are
        packed longest-predicted-first onto a bounded number of chunks
        (LPT bin packing over ``4 x max_workers`` bins) so no expensive
        straggler starts last and dispatch overhead stays flat no matter how
        many layers the sweep has.  Groups larger than an even per-worker
        share are split so a single giant group cannot serialise the batch.

        ``fifo`` schedule: the legacy behaviour — submission-order slices of
        the static ``pool.map`` chunk size.
        """
        if self.schedule == "fifo":
            size = max(1, len(misses) // (self.max_workers * 4))
            return [misses[i : i + size] for i in range(0, len(misses), size)]

        groups: dict[tuple, list[tuple[float, str, SimJob]]] = {}
        order: list[tuple] = []
        for key, job in misses:
            group = job_group_key(job)
            if group not in groups:
                groups[group] = []
                order.append(group)
            groups[group].append((estimate_job_cost(job), key, job))

        # Floor the split size at a typical operand group (one layer across
        # every design plus headroom): with more workers than misses the
        # even-share cap would otherwise degenerate to 1 and scatter each
        # group's jobs across workers, defeating the affinity that makes
        # materialisation and engine-result sharing pay off.
        cap = max(
            _MIN_GROUP_SPLIT,
            math.ceil(len(misses) / max(1, self.max_workers)),
        )
        parts: list[tuple[float, int, list[tuple[str, SimJob]]]] = []
        for position, group in enumerate(order):
            members = groups[group]
            members.sort(key=lambda item: -item[0])
            for start in range(0, len(members), cap):
                part = members[start : start + cap]
                parts.append(
                    (
                        sum(cost for cost, _key, _job in part),
                        position,
                        [(key, job) for _cost, key, job in part],
                    )
                )
        # Longest predicted first; original position breaks ties so the
        # schedule stays deterministic for equal-cost groups.
        parts.sort(key=lambda item: (-item[0], item[1]))

        # LPT bin packing: each group part lands in the currently lightest
        # chunk, keeping the per-chunk dispatch overhead bounded while the
        # heaviest work still starts first within every chunk.
        num_chunks = min(len(parts), max(1, self.max_workers) * 4)
        bins: list[list] = [[0.0, index, []] for index in range(num_chunks)]
        heapq.heapify(bins)
        for cost, _position, part in parts:
            lightest = heapq.heappop(bins)
            lightest[0] += cost
            lightest[2].extend(part)
            heapq.heappush(bins, lightest)
        ordered = sorted(bins, key=lambda item: (-item[0], item[1]))
        return [chunk for _cost, _index, chunk in ordered if chunk]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.parallel:
            mode = (
                f"parallel x{self.max_workers} "
                f"[{self.pool_mode} pool, {self.schedule} schedule]"
            )
        else:
            mode = "serial"
        return f"BatchRunner({mode}, cache={self.cache!r})"


# ----------------------------------------------------------------------
# Shared runner singletons
# ----------------------------------------------------------------------
_default_runner: BatchRunner | None = None
_trial_runner: BatchRunner | None = None


def default_runner() -> BatchRunner:
    """The process-wide runner the experiment harnesses submit through.

    Configured from the environment on first use; tests that need bespoke
    behaviour should construct their own :class:`BatchRunner` and pass it to
    the experiment entry points instead of mutating this one.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = BatchRunner()
    return _default_runner


def trial_runner() -> BatchRunner:
    """Serial runner for nested work (oracle trials, shared engine runs).

    Nested jobs already run *inside* pool workers during a parallel sweep,
    so this runner never forks again — but it shares the default runner's
    disk cache, which is what makes repeated engine runs over the same
    operands (the hottest redundant work of the harness) near-free.
    """
    global _trial_runner
    if _trial_runner is None:
        _trial_runner = BatchRunner(parallel=False, cache=default_runner().cache)
    return _trial_runner


def reset_default_runners() -> None:
    """Drop the shared singletons (tests use this after changing the env)."""
    global _default_runner, _trial_runner
    _default_runner = None
    _trial_runner = None
