"""The batched simulation runner: fan a job grid out, memoize the results.

:class:`BatchRunner` is the single entry point every sweep in this repository
goes through (the end-to-end and layer-wise experiment harnesses, the oracle
mapper's candidate trials, the examples and the benchmark suite).  It takes a
flat list of :class:`~repro.runtime.jobs.SimJob` descriptions and returns
their results in order, doing three things along the way:

1. **Cache lookup** — jobs whose key is already in the
   :class:`~repro.runtime.cache.ResultCache` are never re-executed.
2. **Deduplication** — identical jobs appearing more than once in a batch
   are executed once.
3. **Execution** — remaining jobs run either serially (``parallel=False``,
   the determinism-checking reference) or fanned out over a
   :class:`concurrent.futures.ProcessPoolExecutor` (the default).  Jobs are
   pure functions of their inputs, so both modes produce bit-identical
   results; the parallel mode merely uses more cores.

Environment knobs (read when a runner is constructed without explicit
arguments):

* ``REPRO_PARALLEL=0``   — force serial execution.
* ``REPRO_WORKERS=N``    — process-pool width (default: ``min(cpu_count, 8)``;
  ``1`` implies serial).
* ``REPRO_CACHE=0``      — run without any result cache.
* ``REPRO_CACHE_DIR``    — cache directory (see :mod:`repro.runtime.cache`).
"""

from __future__ import annotations

import copy
import functools
import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass

from repro.runtime.cache import MISS, ResultCache
from repro.runtime.jobs import SimJob, execute_job

#: Default sentinel so ``cache=None`` can explicitly mean "no cache".
_DEFAULT = object()


def _env_parallel() -> bool:
    return os.environ.get("REPRO_PARALLEL", "1") != "0"


def _env_workers() -> int:
    value = os.environ.get("REPRO_WORKERS")
    if value:
        try:
            return max(1, int(value))
        except ValueError:
            raise ValueError(
                f"REPRO_WORKERS must be an integer, got {value!r}"
            ) from None
    return max(1, min(os.cpu_count() or 1, 8))


def _env_cache() -> ResultCache | None:
    if os.environ.get("REPRO_CACHE", "1") == "0":
        return None
    return ResultCache()


@dataclass
class RunnerStats:
    """Counters a :class:`BatchRunner` accumulates over its lifetime."""

    #: Jobs handed to :meth:`BatchRunner.run` in total.
    submitted: int = 0
    #: Jobs answered from the result cache.
    cache_hits: int = 0
    #: Jobs not found in the cache.
    cache_misses: int = 0
    #: Jobs actually simulated (cache misses minus in-batch duplicates).
    executed: int = 0

    def as_row(self) -> dict[str, int]:
        """Row-form summary (for the benchmark session report)."""
        return {
            "submitted": self.submitted,
            "cache hits": self.cache_hits,
            "cache misses": self.cache_misses,
            "executed": self.executed,
        }


class BatchRunner:
    """Executes simulation job grids with caching and optional parallelism."""

    def __init__(
        self,
        parallel: bool | None = None,
        max_workers: int | None = None,
        cache: ResultCache | None | object = _DEFAULT,
    ) -> None:
        self.max_workers = max_workers if max_workers is not None else _env_workers()
        self.parallel = (parallel if parallel is not None else _env_parallel()) and (
            self.max_workers > 1
        )
        self.cache = _env_cache() if cache is _DEFAULT else cache
        self.stats = RunnerStats()

    # ------------------------------------------------------------------
    def run(self, jobs: list[SimJob]) -> list:
        """Execute every job and return their results in submission order."""
        jobs = list(jobs)
        self.stats.submitted += len(jobs)
        results: list = [None] * len(jobs)
        #: key -> (job, [indices waiting for it]) for jobs the cache missed.
        pending: dict[str, tuple[SimJob, list[int]]] = {}
        for index, job in enumerate(jobs):
            key = job.key()
            cached = self.cache.get(key) if self.cache is not None else MISS
            if cached is not MISS:
                self.stats.cache_hits += 1
                results[index] = cached
                continue
            self.stats.cache_misses += 1
            if key in pending:
                pending[key][1].append(index)
            else:
                pending[key] = (job, [index])

        if pending:
            keys = list(pending)
            miss_jobs = [pending[key][0] for key in keys]
            outcomes = self._execute(miss_jobs)
            self.stats.executed += len(outcomes)
            for key, outcome in zip(keys, outcomes):
                if self.cache is not None:
                    self.cache.put(key, outcome)
                indices = pending[key][1]
                results[indices[0]] = outcome
                for duplicate in indices[1:]:
                    # Duplicates get their own copy so mutating one result
                    # can never alias another slot of the batch.
                    results[duplicate] = copy.deepcopy(outcome)
        return results

    def run_one(self, job: SimJob):
        """Convenience wrapper: run a single job."""
        return self.run([job])[0]

    # ------------------------------------------------------------------
    def _execute(self, jobs: list[SimJob]) -> list:
        # Nested work (Flexagon's oracle-mapper trials) must land in *this*
        # runner's cache — not the env-default one — and must stay uncached
        # when this runner was explicitly built without a cache.  In-process
        # execution hands over the live cache object (keeping its in-memory
        # memo warm across jobs); the pool path ships the directory instead,
        # since the memo dict should not be pickled to every worker.
        if not self.parallel or len(jobs) < 2:
            run = functools.partial(execute_job, trial_cache=self.cache)
            return [run(job) for job in jobs]
        trial_dir = None if self.cache is None else str(self.cache.directory)
        run = functools.partial(execute_job, trial_cache=trial_dir)
        workers = min(self.max_workers, len(jobs))
        chunksize = max(1, len(jobs) // (workers * 4))
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=_pool_context()
        ) as pool:
            return list(pool.map(run, jobs, chunksize=chunksize))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        mode = f"parallel x{self.max_workers}" if self.parallel else "serial"
        return f"BatchRunner({mode}, cache={self.cache!r})"


def _pool_context():
    """Prefer fork workers: they inherit the loaded modules, so tiny jobs do
    not pay an interpreter start-up and re-import per worker."""
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return None


# ----------------------------------------------------------------------
# Shared runner singletons
# ----------------------------------------------------------------------
_default_runner: BatchRunner | None = None
_trial_runner: BatchRunner | None = None


def default_runner() -> BatchRunner:
    """The process-wide runner the experiment harnesses submit through.

    Configured from the environment on first use; tests that need bespoke
    behaviour should construct their own :class:`BatchRunner` and pass it to
    the experiment entry points instead of mutating this one.
    """
    global _default_runner
    if _default_runner is None:
        _default_runner = BatchRunner()
    return _default_runner


def trial_runner() -> BatchRunner:
    """Serial runner for nested work (the oracle mapper's candidate trials).

    Mapper trials already run *inside* pool workers during a parallel sweep,
    so this runner never forks again — but it shares the default runner's
    disk cache, which is what makes repeated oracle trials on the same
    operands (the hottest redundant work of the harness) near-free.
    """
    global _trial_runner
    if _trial_runner is None:
        _trial_runner = BatchRunner(parallel=False, cache=default_runner().cache)
    return _trial_runner


def reset_default_runners() -> None:
    """Drop the shared singletons (tests use this after changing the env)."""
    global _default_runner, _trial_runner
    _default_runner = None
    _trial_runner = None
