"""Persistent, content-addressed result cache for simulation jobs.

Completed jobs are memoized on disk keyed by :meth:`SimJob.key`, so any
process that builds the same job — a later benchmark invocation, a pytest
re-run, a worker process of the parallel executor — gets the finished result
back instead of re-simulating.  Entries are pickled result records fanned out
into 256 two-hex-character shard subdirectories
(``<dir>/<key[:2]>/<key>.pkl``), which keeps directory listings short for
large sweeps; entries written by older builds directly under ``<dir>``
("flat" layout) are still found and are transparently migrated into their
shard on first read.  Writes go through a temporary file plus
:func:`os.replace` so concurrent writers (the pool workers all share one
directory) can never leave a torn file behind.

Point lookups use :meth:`ResultCache.get`; the runner's pre-dispatch hit
scan uses :meth:`ResultCache.get_many`, which lists each needed shard once
instead of paying one ``stat`` + ``open`` attempt per key — on a cold sweep
almost every key is a miss, and a miss costs nothing once the shard listing
is in hand.

The cache is *input*-addressed, not code-addressed: if the simulator's
semantics change, bump :data:`repro.runtime.jobs.CACHE_SCHEMA_VERSION` (or
clear the directory with ``python -m repro cache clear``).

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default: ``.repro_cache`` under the
  current working directory).
* ``REPRO_CACHE=0`` — disable the on-disk layer entirely.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro import knobs

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()

#: Upper bound on blobs kept in a cache instance's in-memory level.  The
#: disk level is authoritative; this only caps RAM held by long sessions
#: (e.g. the process-wide default runner over a full-scale sweep).
MEMORY_ENTRY_LIMIT = 4096


def default_cache_dir() -> Path:
    """The cache directory the environment asks for."""
    return Path(knobs.get("REPRO_CACHE_DIR"))


@dataclass(frozen=True)
class PruneReport:
    """Outcome of :meth:`ResultCache.prune`."""

    removed_entries: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int


class ResultCache:
    """Two-level (memory + disk) store of finished job results.

    The in-memory level keeps the *pickled* bytes rather than the live
    object: every :meth:`get` deserialises a fresh copy, so callers can
    never corrupt the cache through a returned record.  It is an LRU
    bounded to :data:`MEMORY_ENTRY_LIMIT` blobs; evicted entries simply fall
    back to the disk level.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self._memory: OrderedDict[str, bytes] = OrderedDict()  # guarded-by: _memory_lock
        # One cache instance is shared by concurrent BatchRunner.run() calls
        # (the serving front-end's background jobs); the recency reordering
        # and bound eviction must not race each other's lookups.
        self._memory_lock = threading.Lock()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk (sharded) location of one entry."""
        return self.directory / key[:2] / f"{key}.pkl"

    def legacy_path_for(self, key: str) -> Path:
        """Pre-shard flat location of one entry (read + migrated, not written)."""
        return self.directory / f"{key}.pkl"

    def get(self, key: str):
        """The cached result for ``key``, or :data:`MISS`."""
        blob = self._memory_get(key)
        if blob is None:
            path = self.path_for(key)
            try:
                blob = path.read_bytes()
            except OSError:
                legacy = self.legacy_path_for(key)
                try:
                    blob = legacy.read_bytes()
                except OSError:
                    return MISS
                self._migrate_legacy(key)
            self._remember(key, blob)
        return self._decode(key, blob)

    def _memory_get(self, key: str) -> bytes | None:
        """Memory-level lookup, refreshing the entry's LRU recency."""
        with self._memory_lock:
            blob = self._memory.get(key)
            if blob is not None:
                self._memory.move_to_end(key)
            return blob

    def get_many(self, keys: list[str]) -> dict[str, object]:
        """Batched lookup: the subset of ``keys`` that are cached, decoded.

        Instead of one ``stat`` + ``open`` attempt per key (the cost profile
        of calling :meth:`get` in a loop, painful on cold sweeps where nearly
        every key misses), each needed shard directory — and the flat legacy
        level, if any key falls back to it — is listed once and only files
        known to exist are opened.  Legacy entries found this way are
        migrated into their shard exactly as :meth:`get` would.
        """
        found: dict[str, object] = {}
        need: dict[str, list[str]] = {}
        for key in dict.fromkeys(keys):
            blob = self._memory_get(key)
            if blob is not None:
                value = self._decode(key, blob)
                if value is not MISS:
                    found[key] = value
                continue
            need.setdefault(key[:2], []).append(key)
        if not need or not self.directory.is_dir():
            return found
        flat_names: set[str] | None = None
        for prefix, shard_keys in need.items():
            names = _list_dir(self.directory / prefix)
            for key in shard_keys:
                file_name = f"{key}.pkl"
                if file_name in names:
                    path = self.path_for(key)
                else:
                    if flat_names is None:
                        flat_names = _list_dir(self.directory)
                    if file_name not in flat_names:
                        continue
                    path = self._migrate_legacy(key)
                try:
                    blob = path.read_bytes()
                except OSError:
                    continue  # concurrently removed
                self._remember(key, blob)
                value = self._decode(key, blob)
                if value is not MISS:
                    found[key] = value
        return found

    def missing(self, keys: list[str]) -> list[str]:
        """The subset of ``keys`` with no cache entry, without reading any.

        A pure existence probe: each needed shard (and the flat legacy
        level, when some key falls back to it) is listed once and no entry
        file is ever opened or decoded — the cost profile the serving
        front-end needs to classify a request as cache-warm or cold before
        deciding whether to answer synchronously.  A torn entry that
        :meth:`get` would treat as a miss can therefore still count as
        present here; the serving path tolerates that by re-running the jobs
        the subsequent full read reports missing.
        """
        absent: list[str] = []
        need: dict[str, list[str]] = {}
        with self._memory_lock:
            remembered = set(self._memory)
        for key in dict.fromkeys(keys):
            if key in remembered:
                continue
            need.setdefault(key[:2], []).append(key)
        if not need:
            return absent
        if not self.directory.is_dir():
            return [key for shard_keys in need.values() for key in shard_keys]
        flat_names: set[str] | None = None
        for prefix, shard_keys in need.items():
            names = _list_dir(self.directory / prefix)
            for key in shard_keys:
                file_name = f"{key}.pkl"
                if file_name in names:
                    continue
                if flat_names is None:
                    flat_names = _list_dir(self.directory)
                if file_name not in flat_names:
                    absent.append(key)
        return absent

    def get_blob(self, key: str) -> bytes | None:
        """The stored (pickled) bytes for ``key``, or ``None`` — no decoding.

        The transport form of the cache-replication path: the fabric
        coordinator serves entries to ``cache pull`` peers as raw bytes, so
        the receiver can digest-verify and store them without trusting (or
        paying for) a deserialise on the wire boundary.
        """
        blob = self._memory_get(key)
        if blob is not None:
            return blob
        path = self.path_for(key)
        try:
            blob = path.read_bytes()
        except OSError:
            legacy = self.legacy_path_for(key)
            try:
                blob = legacy.read_bytes()
            except OSError:
                return None
            self._migrate_legacy(key)
        self._remember(key, blob)
        return blob

    def keys(self) -> list[str]:
        """Every on-disk entry key, sorted (sharded and flat legacy layout).

        The coordinator's ``/v1/cache/keys`` inventory: a peer diffs this
        against its own :meth:`missing` probe to decide what to pull.
        """
        return sorted({path.stem for path in self._entry_paths()})

    def _decode(self, key: str, blob: bytes):
        try:
            return pickle.loads(blob)
        except Exception:  # repro: allow[bare-except]
            # A torn or stale entry (e.g. written by an incompatible version)
            # is indistinguishable from a miss — whatever pickle raised for
            # it, the answer is the same: drop the entry so it gets rebuilt.
            with self._memory_lock:
                self._memory.pop(key, None)
            self.path_for(key).unlink(missing_ok=True)
            self.legacy_path_for(key).unlink(missing_ok=True)
            return MISS

    def _migrate_legacy(self, key: str) -> Path:
        """Move a flat legacy entry into its shard; returns the new path."""
        path = self.path_for(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            os.replace(self.legacy_path_for(key), path)
        except OSError:
            pass  # concurrently migrated or removed; the read decides
        return path

    def _remember(self, key: str, blob: bytes) -> None:
        with self._memory_lock:
            self._memory[key] = blob
            self._memory.move_to_end(key)
            while len(self._memory) > MEMORY_ENTRY_LIMIT:
                self._memory.popitem(last=False)

    def put(self, key: str, value: object) -> None:
        """Store one finished result under ``key``."""
        self.put_blob(key, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def put_blob(self, key: str, blob: bytes) -> None:
        """Store one entry's already-pickled bytes under ``key``.

        The write half of the replication path (:meth:`get_blob` is the read
        half): a digest-verified entry received from a peer lands byte-for-
        byte, so the two caches stay content-identical under the same key.
        """
        self._remember(key, blob)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def _entry_paths(self):
        """Every on-disk entry (sharded first, then flat legacy files)."""
        if not self.directory.is_dir():
            return
        yield from self.directory.glob("*/*.pkl")
        yield from self.directory.glob("*.pkl")

    def clear(self) -> int:
        """Remove every entry (memory and disk); returns entries removed.

        Also sweeps ``*.tmp`` files a killed writer may have stranded
        between ``mkstemp`` and ``os.replace``.
        """
        with self._memory_lock:
            self._memory.clear()
        removed = 0
        for path in list(self._entry_paths()):
            path.unlink(missing_ok=True)
            removed += 1
        if self.directory.is_dir():
            for pattern in ("*/*.tmp", "*.tmp"):
                for path in self.directory.glob(pattern):
                    path.unlink(missing_ok=True)
        return removed

    def prune(
        self, max_size_bytes: int | None = None, *, prefix: str | None = None
    ) -> PruneReport:
        """Evict entries by LRU size bound, key prefix, or both.

        With ``max_size_bytes``, entries are ranked by file mtime (ties
        broken by key for determinism) and the oldest are deleted first
        until the remaining entries total at most the bound.  Writes refresh
        an entry's mtime (``put`` replaces the file), so mtime order
        approximates LRU for the sweep workloads that funnel through the
        runner.

        With ``prefix``, only entries whose key starts with it are
        considered — and if no size bound is given, *every* matching entry
        is evicted.  That is how a finished DSE campaign (``prefix="dse-"``)
        is dropped without touching figure results; the report's
        ``remaining`` counts then cover only the matching keys.
        """
        if max_size_bytes is None and prefix is None:
            raise ValueError("prune needs a size bound, a key prefix, or both")
        if max_size_bytes is not None and max_size_bytes < 0:
            raise ValueError("max_size_bytes must be non-negative")
        bound = 0 if max_size_bytes is None else max_size_bytes
        entries = []
        for path in self._entry_paths():
            if prefix is not None and not path.stem.startswith(prefix):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently removed
            entries.append((stat.st_mtime, path.stem, path, stat.st_size))
        entries.sort(key=lambda entry: entry[:2])
        total = sum(entry[3] for entry in entries)
        removed = 0
        freed = 0
        for _mtime, key, path, size in entries:
            if total <= bound:
                break
            path.unlink(missing_ok=True)
            with self._memory_lock:
                self._memory.pop(key, None)
            total -= size
            freed += size
            removed += 1
        return PruneReport(
            removed_entries=removed,
            freed_bytes=freed,
            remaining_entries=len(entries) - removed,
            remaining_bytes=total,
        )

    def entry_count(self) -> int:
        """Number of entries currently on disk (sharded + flat legacy)."""
        return sum(1 for _ in self._entry_paths())

    def size_bytes(self) -> int:
        """Total bytes the on-disk entries occupy."""
        total = 0
        for path in self._entry_paths():
            try:
                total += path.stat().st_size
            except OSError:
                continue  # concurrently removed
        return total

    def stats_report(self) -> dict[str, object]:
        """One batched scan of the disk level, with layout telemetry.

        Returns entry/byte totals split by layout (sharded vs flat legacy),
        the shard-directory count and how long the scan itself took — the
        number ``python -m repro cache stats`` reports as scan throughput.
        """
        start = time.perf_counter()
        entries = 0
        size = 0
        legacy_entries = 0
        shard_dirs = 0
        if self.directory.is_dir():
            for child in _scandir_safe(self.directory):
                try:
                    is_dir = child.is_dir()
                except OSError:
                    continue  # concurrently removed
                if is_dir:
                    shard_dirs += 1
                    for entry in _scandir_safe(child.path):
                        if not entry.name.endswith(".pkl"):
                            continue
                        try:
                            size += entry.stat().st_size
                        except OSError:
                            continue  # concurrently removed
                        entries += 1
                elif child.name.endswith(".pkl"):
                    try:
                        size += child.stat().st_size
                    except OSError:
                        continue  # concurrently removed
                    entries += 1
                    legacy_entries += 1
        return {
            "directory": str(self.directory),
            "entries": entries,
            "size_bytes": size,
            "shard_dirs": shard_dirs,
            "legacy_entries": legacy_entries,
            "scan_seconds": time.perf_counter() - start,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.directory)!r})"


def _scandir_safe(path) -> list:
    """Directory entries, tolerating a concurrently removed directory."""
    try:
        with os.scandir(path) as it:
            return list(it)
    except OSError:
        return []


def _list_dir(path: Path) -> set[str]:
    """File names directly under ``path`` (empty when it does not exist)."""
    return {entry.name for entry in _scandir_safe(path)}
