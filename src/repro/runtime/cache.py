"""Persistent, content-addressed result cache for simulation jobs.

Completed jobs are memoized on disk keyed by :meth:`SimJob.key`, so any
process that builds the same job — a later benchmark invocation, a pytest
re-run, a worker process of the parallel executor — gets the finished result
back instead of re-simulating.  Entries are pickled result records stored as
``<dir>/<key[:2]>/<key>.pkl``; writes go through a temporary file plus
:func:`os.replace` so concurrent writers (the pool workers all share one
directory) can never leave a torn file behind.

The cache is *input*-addressed, not code-addressed: if the simulator's
semantics change, bump :data:`repro.runtime.jobs.CACHE_SCHEMA_VERSION` (or
clear the directory with ``python -m repro.runtime clear``).

Environment knobs:

* ``REPRO_CACHE_DIR`` — cache directory (default: ``.repro_cache`` under the
  current working directory).
* ``REPRO_CACHE=0`` — disable the on-disk layer entirely.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

#: Sentinel distinguishing "not cached" from a cached ``None``.
MISS = object()

#: Upper bound on blobs kept in a cache instance's in-memory level.  The
#: disk level is authoritative; this only caps RAM held by long sessions
#: (e.g. the process-wide default runner over a full-scale sweep).
MEMORY_ENTRY_LIMIT = 4096


def default_cache_dir() -> Path:
    """The cache directory the environment asks for."""
    return Path(os.environ.get("REPRO_CACHE_DIR") or ".repro_cache")


@dataclass(frozen=True)
class PruneReport:
    """Outcome of :meth:`ResultCache.prune`."""

    removed_entries: int
    freed_bytes: int
    remaining_entries: int
    remaining_bytes: int


class ResultCache:
    """Two-level (memory + disk) store of finished job results.

    The in-memory level keeps the *pickled* bytes rather than the live
    object: every :meth:`get` deserialises a fresh copy, so callers can
    mutate a returned record (the scheduler folds conversion costs into
    layer results, for example) without corrupting the cache.  It is an LRU
    bounded to :data:`MEMORY_ENTRY_LIMIT` blobs; evicted entries simply fall
    back to the disk level.
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = Path(directory) if directory is not None else default_cache_dir()
        self._memory: OrderedDict[str, bytes] = OrderedDict()

    # ------------------------------------------------------------------
    def path_for(self, key: str) -> Path:
        """On-disk location of one entry."""
        return self.directory / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached result for ``key``, or :data:`MISS`."""
        blob = self._memory.get(key)
        if blob is None:
            path = self.path_for(key)
            try:
                blob = path.read_bytes()
            except OSError:
                return MISS
            self._remember(key, blob)
        else:
            self._memory.move_to_end(key)
        try:
            return pickle.loads(blob)
        except Exception:
            # A torn or stale entry (e.g. written by an incompatible version)
            # is indistinguishable from a miss; drop it so it gets rebuilt.
            self._memory.pop(key, None)
            self.path_for(key).unlink(missing_ok=True)
            return MISS

    def _remember(self, key: str, blob: bytes) -> None:
        self._memory[key] = blob
        self._memory.move_to_end(key)
        while len(self._memory) > MEMORY_ENTRY_LIMIT:
            self._memory.popitem(last=False)

    def put(self, key: str, value: object) -> None:
        """Store one finished result under ``key``."""
        blob = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
        self._remember(key, blob)
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(blob)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Remove every entry (memory and disk); returns entries removed.

        Also sweeps ``*.tmp`` files a killed writer may have stranded
        between ``mkstemp`` and ``os.replace``.
        """
        self._memory.clear()
        removed = 0
        if self.directory.is_dir():
            for path in self.directory.glob("*/*.pkl"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in self.directory.glob("*/*.tmp"):
                path.unlink(missing_ok=True)
        return removed

    def prune(self, max_size_bytes: int) -> PruneReport:
        """Evict least-recently-written entries until the disk level fits.

        Entries are ranked by file mtime (ties broken by key for
        determinism) and the oldest are deleted first until the remaining
        entries total at most ``max_size_bytes``.  Writes refresh an entry's
        mtime (``put`` replaces the file), so mtime order approximates LRU
        for the sweep workloads that funnel through the runner.
        """
        if max_size_bytes < 0:
            raise ValueError("max_size_bytes must be non-negative")
        entries = []
        if self.directory.is_dir():
            for path in self.directory.glob("*/*.pkl"):
                try:
                    stat = path.stat()
                except OSError:
                    continue  # concurrently removed
                entries.append((stat.st_mtime, path.stem, path, stat.st_size))
        entries.sort(key=lambda entry: entry[:2])
        total = sum(entry[3] for entry in entries)
        removed = 0
        freed = 0
        for _mtime, key, path, size in entries:
            if total <= max_size_bytes:
                break
            path.unlink(missing_ok=True)
            self._memory.pop(key, None)
            total -= size
            freed += size
            removed += 1
        return PruneReport(
            removed_entries=removed,
            freed_bytes=freed,
            remaining_entries=len(entries) - removed,
            remaining_bytes=total,
        )

    def entry_count(self) -> int:
        """Number of entries currently on disk."""
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.pkl"))

    def size_bytes(self) -> int:
        """Total bytes the on-disk entries occupy."""
        if not self.directory.is_dir():
            return 0
        return sum(path.stat().st_size for path in self.directory.glob("*/*.pkl"))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.directory)!r})"
