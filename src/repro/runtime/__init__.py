"""Parallel batched simulation runtime with a persistent result cache.

This package is the execution seam of the repository: every simulation sweep
— the end-to-end and layer-wise experiment harnesses, the oracle mapper's
candidate-dataflow trials, the examples and the benchmark suite — expresses
its work as a flat grid of :class:`SimJob` descriptions and submits it to a
:class:`BatchRunner`, which deduplicates, answers what it can from the
content-addressed on-disk :class:`ResultCache`, and fans the rest out over a
process pool (or runs them serially for determinism checking; both modes are
bit-identical).

See the README's "Batched simulation runtime" section for the job model, the
cache location and the environment knobs.
"""

from repro.runtime.cache import MISS, PruneReport, ResultCache, default_cache_dir
from repro.runtime.cost import estimate_job_cost, job_group_key
from repro.runtime.jobs import (
    CACHE_SCHEMA_VERSION,
    CPU_DESIGN,
    DESIGN_ORDER,
    ENGINE_DESIGN,
    SimJob,
    build_design,
    execute_chunk,
    execute_job,
)
from repro.runtime.pool import (
    POOL_MODES,
    WorkerPool,
    pool_mode_from_env,
    reset_shared_pool,
    shared_pool,
    shutdown_shared_pool,
)
from repro.runtime.runner import (
    SCHEDULE_MODES,
    BatchRunner,
    RunnerStats,
    default_runner,
    reset_default_runners,
    trial_runner,
)

__all__ = [
    "MISS",
    "PruneReport",
    "ResultCache",
    "default_cache_dir",
    "estimate_job_cost",
    "job_group_key",
    "CACHE_SCHEMA_VERSION",
    "CPU_DESIGN",
    "DESIGN_ORDER",
    "ENGINE_DESIGN",
    "SimJob",
    "build_design",
    "execute_chunk",
    "execute_job",
    "POOL_MODES",
    "WorkerPool",
    "pool_mode_from_env",
    "reset_shared_pool",
    "shared_pool",
    "shutdown_shared_pool",
    "SCHEDULE_MODES",
    "BatchRunner",
    "RunnerStats",
    "default_runner",
    "reset_default_runners",
    "trial_runner",
]
