"""Job cost estimation and worker-affinity grouping for the batch runner.

The runner schedules cache-missing jobs longest-processing-time-first and
packs jobs that simulate the same operands onto the same worker.  Both
decisions need a *predicted* cost per job, cheap enough to compute for every
job of a sweep without touching the operands themselves:

* :func:`estimate_job_cost` — expected effectual multiply-accumulates of the
  job's SpMSpM (dimensions x densities, from the layer spec or the operand
  nnz counts), weighted by how much simulation the design actually performs
  (a Flexagon job runs one engine simulation per candidate dataflow of the
  oracle mapper; the CPU baseline is a closed-form cost model).
* :func:`job_group_key` — identity of the operand pair a job simulates
  (``(spec, scale, seed)`` for generated layers, content digests for explicit
  operands).  Jobs with equal group keys are dispatched to the same worker so
  the per-process :func:`~repro.workloads.layers.materialize_layer` memo and
  the shared engine-result cache hit instead of every worker re-generating
  and re-simulating the same layer.

The estimates only need to *rank* jobs; they are never compared against
measured cycles.
"""

from __future__ import annotations

from repro.dataflows.base import Dataflow
from repro.runtime.jobs import CPU_DESIGN, SimJob

#: Relative simulation effort per design, in units of "one engine run over
#: the job's operands".  Flexagon pays one engine run per candidate dataflow
#: of the oracle mapper (all six when the layout is unconstrained) plus the
#: final configured run; the CPU baseline never walks element streams at all.
DESIGN_WEIGHTS = {
    "Flexagon": float(len(Dataflow)) + 1.0,
    CPU_DESIGN: 0.05,
}

#: Weight for any design not listed above (the fixed-dataflow baselines and
#: raw engine jobs: exactly one engine run).
DEFAULT_DESIGN_WEIGHT = 1.0


def estimate_job_cost(job: SimJob) -> float:
    """Predicted relative cost of executing ``job`` (arbitrary units).

    For spec jobs the expected effectual MAC count is computed from the
    *scaled* dimensions and the operand densities; for explicit-operand jobs
    it is derived from the stored nnz counts.  The result is scaled by the
    design weight so a Flexagon job ranks several times above a
    forced-dataflow job over the same operands.
    """
    if job.spec is not None:
        scaled = job.spec.scaled(job.scale)
        macs = scaled.dense_macs * scaled.density_a * scaled.density_b
    else:
        # E[effectual MACs] for C = A x B with the operands' nnz spread
        # uniformly over the shared K dimension.
        k = max(1, job.a.ncols)
        macs = job.a.nnz * job.b.nnz / k
    weight = DESIGN_WEIGHTS.get(job.design, DEFAULT_DESIGN_WEIGHT)
    return max(1.0, float(macs)) * weight


def job_group_key(job: SimJob) -> tuple:
    """Identity of the operand pair ``job`` simulates (worker affinity key).

    Jobs over the same generated layer (same spec, scale and resolved seed)
    or the same explicit operand pair share a group; the runner keeps a group
    on one worker so materialisation and the per-pair derived-structure
    memos are paid once per group instead of once per (worker, job).
    """
    if job.spec is not None:
        return ("spec", job.spec, job.scale, job.resolved_seed())
    from repro.runtime.jobs import _matrix_digest

    return ("operands", _matrix_digest(job.a), _matrix_digest(job.b))
