"""The job model of the batched simulation runtime.

A :class:`SimJob` describes one independent unit of simulation work — one
SpMSpM layer on one design — as plain data: the accelerator configuration,
the layer (either a :class:`~repro.workloads.layers.LayerSpec` materialised
on the worker, or a concrete operand pair), the RNG seed and an optional
forced dataflow.  Because a job is data, it can be

* shipped to a worker process and executed there (:func:`execute_job`), and
* identified by a stable content hash (:meth:`SimJob.key`) that is the same
  in every process and across interpreter runs, which is what makes the
  on-disk result cache (:mod:`repro.runtime.cache`) correct.

The key deliberately covers *everything the result depends on*: the design,
every configuration field, the layer spec (or the full operand contents when
explicit matrices are given), scale, seed and forced dataflow, plus a schema
version that must be bumped whenever the simulator's semantics change.
"""

from __future__ import annotations

import enum
import functools
import hashlib
import json
import os
import weakref
from collections import OrderedDict
from dataclasses import asdict, dataclass

from repro import knobs
from repro.arch.config import AcceleratorConfig
from repro.dataflows.base import Dataflow
from repro.engine_vec import validate_engine_backend
from repro.sparse.formats import CompressedMatrix
from repro.workloads.layers import LayerSpec, materialize_layer

#: Bump whenever the meaning of a cached result changes (simulator semantics,
#: result record layout, ...).  Stale cache entries then simply never hit.
#: v2: ``LayerSimResult`` gained the declared ``dram`` field and the
#: JSON-record contract of :mod:`repro.metrics.results`.
CACHE_SCHEMA_VERSION = 2

#: The four hardware designs of the paper's comparison, in plot order.
DESIGN_ORDER = ("SIGMA-like", "SpArch-like", "GAMMA-like", "Flexagon")

#: Software baseline design name (the CPU MKL-like cost model).
CPU_DESIGN = "CPU-MKL"

#: Raw engine runs (a forced dataflow on the shared substrate, no design
#: policy) — the unit of the oracle mapper's candidate trials.
ENGINE_DESIGN = "engine"

_KNOWN_DESIGNS = DESIGN_ORDER + (CPU_DESIGN, ENGINE_DESIGN)


#: Default for ``trial_cache``: use the process-wide trial runner.
SHARED_TRIAL_CACHE = "<shared>"


def _env_share_engine() -> bool:
    """Whether design jobs share engine runs through the result cache.

    ``REPRO_SHARE_ENGINE=0`` restores the pre-sharing behaviour (every design
    simulates its engine run directly, even when the identical run is already
    cached as an oracle trial) — used for A/B benchmarking.
    """
    return knobs.get("REPRO_SHARE_ENGINE")


#: Per-process memo of nested runners keyed by cache directory: every job a
#: pool worker executes over the same sweep cache reuses one runner, so the
#: cache's in-memory blob level stays warm across the worker's whole chunk
#: stream instead of re-reading shared engine results from disk per job.
#: Bounded LRU: persistent-pool workers live for the whole process, and each
#: retained runner pins up to one cache's worth of in-memory blobs.
_NESTED_RUNNERS: "OrderedDict[str, object]" = OrderedDict()
_NESTED_RUNNER_LIMIT = 4


def _nested_runner(trial_cache: object):
    """The serial runner nested (trial / shared engine) jobs go through.

    :data:`SHARED_TRIAL_CACHE` resolves to the process-wide trial runner; a
    :class:`~repro.runtime.cache.ResultCache` instance or a directory path
    yields a serial runner over that cache (memoized per directory within
    the process); ``None`` yields a cache-less serial runner (nested work
    executes but memoizes nothing).
    """
    if isinstance(trial_cache, str) and trial_cache == SHARED_TRIAL_CACHE:
        from repro.runtime.runner import trial_runner

        return trial_runner()
    from repro.runtime.cache import ResultCache
    from repro.runtime.runner import BatchRunner

    if trial_cache is not None and not isinstance(trial_cache, ResultCache):
        directory = os.fspath(trial_cache)
        runner = _NESTED_RUNNERS.get(directory)
        if runner is None:
            runner = BatchRunner(parallel=False, cache=ResultCache(directory))
            _NESTED_RUNNERS[directory] = runner
        else:
            _NESTED_RUNNERS.move_to_end(directory)
        while len(_NESTED_RUNNERS) > _NESTED_RUNNER_LIMIT:
            _NESTED_RUNNERS.popitem(last=False)
        return runner
    return BatchRunner(parallel=False, cache=trial_cache)


def build_design(
    design: str,
    config: AcceleratorConfig,
    *,
    trial_cache: object = SHARED_TRIAL_CACHE,
    engine: str | None = None,
):
    """Instantiate one hardware design; Flexagon gets the oracle mapper.

    The paper configures Flexagon with the most suitable dataflow per layer
    (the offline mapper/compiler of Fig. 3b); the oracle mapper reproduces
    that by simulating the candidate dataflows and picking the fastest.

    ``trial_cache`` controls where nested engine-level jobs — the oracle's
    candidate trials *and* the design's final configured engine run — are
    memoized: the default (:data:`SHARED_TRIAL_CACHE`) routes them through
    the process-wide (env configured) trial runner; a
    :class:`~repro.runtime.cache.ResultCache` instance or a directory path
    gives the design a private serial runner over that cache; ``None``
    disables nested caching entirely.  A
    :class:`~repro.runtime.runner.BatchRunner` forwards its own cache here
    (the live object in-process, the directory across a pool boundary) so
    nested work can never read or write a cache the caller did not choose.

    Because engine jobs are content-addressed by (config, operands, dataflow)
    alone, routing every design's engine run through the same cache
    deduplicates the sweep's hottest redundant work: a fixed-dataflow
    baseline re-simulates exactly the run Flexagon's oracle already trialed
    over the same operands, and Flexagon's own final run re-simulates its
    winning trial.  ``REPRO_SHARE_ENGINE=0`` disables the sharing (trials
    remain cached as before).

    ``engine`` selects the :class:`~repro.accelerators.engine.SpmspmEngine`
    execution backend (``"vectorized"`` / ``"reference"``; ``None`` defers to
    ``REPRO_ENGINE`` and then the default).  Both backends are bit-equivalent,
    so the choice never affects results — only how fast they are produced.
    """
    from repro.accelerators import (
        FlexagonAccelerator,
        GammaLikeAccelerator,
        SigmaLikeAccelerator,
        SparchLikeAccelerator,
    )

    nested = _nested_runner(trial_cache)
    if design == "Flexagon":
        from repro.core.mapper import OracleMapper

        mapper = OracleMapper(config, runner=nested, engine=engine)
        accelerator = FlexagonAccelerator(config, mapper=mapper, engine=engine)
    else:
        classes = {
            "SIGMA-like": SigmaLikeAccelerator,
            "SpArch-like": SparchLikeAccelerator,
            "GAMMA-like": GammaLikeAccelerator,
        }
        accelerator = classes[design](config, engine=engine)
    if nested.cache is not None and _env_share_engine():
        accelerator.engine_job_runner = nested
    return accelerator


@dataclass(frozen=True)
class SimJob:
    """One independent simulation unit of a sweep.

    Exactly one of two layer descriptions must be provided:

    * ``spec`` (with ``scale`` and ``seed``) — the operands are generated on
      the executing worker, so the job itself stays tiny, or
    * ``a`` and ``b`` — explicit operands, content-addressed by hashing their
      stored arrays (used by the oracle mapper's candidate trials).
    """

    design: str
    config: AcceleratorConfig
    spec: LayerSpec | None = None
    scale: float = 1.0
    seed: int | None = None
    dataflow: Dataflow | None = None
    layer_name: str = ""
    a: CompressedMatrix | None = None
    b: CompressedMatrix | None = None
    #: Engine backend the job executes with (``None``: ``REPRO_ENGINE`` /
    #: default).  Deliberately **excluded** from :meth:`key`: the backends
    #: are bit-equivalent (enforced by the equivalence suite), so cached
    #: results are shared between them and a backend switch can never
    #: invalidate or fork the cache.
    engine: str | None = None

    def __post_init__(self) -> None:
        if self.design not in _KNOWN_DESIGNS:
            raise ValueError(
                f"unknown design {self.design!r}; expected one of {_KNOWN_DESIGNS}"
            )
        if self.engine is not None:
            validate_engine_backend(self.engine)
        has_operands = self.a is not None and self.b is not None
        if (self.a is None) != (self.b is None):
            raise ValueError("operands a and b must be given together")
        if has_operands == (self.spec is not None):
            raise ValueError("provide either a layer spec or an (a, b) operand pair")
        if self.design == ENGINE_DESIGN and self.dataflow is None:
            raise ValueError("engine jobs must force a dataflow")

    # ------------------------------------------------------------------
    def resolved_seed(self) -> int | None:
        """The RNG seed actually used when materialising from a spec."""
        if self.spec is None:
            return None
        return self.seed if self.seed is not None else self.spec.deterministic_seed()

    def operands(self) -> tuple[CompressedMatrix, CompressedMatrix]:
        """The concrete ``(A, B)`` pair this job simulates."""
        if self.a is not None and self.b is not None:
            return self.a, self.b
        return materialize_layer(self.spec, scale=self.scale, seed=self.resolved_seed())

    # ------------------------------------------------------------------
    def key(self) -> str:
        """Stable content hash identifying this job across processes.

        Built from a canonical JSON rendering of every input the result
        depends on and hashed with SHA-256, so it does not depend on
        ``PYTHONHASHSEED``, interpreter build or process identity.
        """
        payload: dict[str, object] = {
            "schema": CACHE_SCHEMA_VERSION,
            "design": self.design,
            # The CPU baseline never reads the accelerator config, so it is
            # normalised out of CPU keys: one cached CPU result serves every
            # accelerator design point over the same operands.
            "config": _config_blob(self.config) if self.design != CPU_DESIGN else None,
            "dataflow": self.dataflow.name if self.dataflow is not None else None,
            "layer_name": self.layer_name,
        }
        if self.spec is not None:
            payload["spec"] = asdict(self.spec)
            payload["scale"] = self.scale
            payload["seed"] = self.resolved_seed()
        else:
            payload["a"] = _matrix_digest(self.a)
            payload["b"] = _matrix_digest(self.b)
        if self.design == CPU_DESIGN:
            from repro.accelerators.cpu import CpuConfig

            payload["cpu_config"] = asdict(CpuConfig())
        encoded = json.dumps(payload, sort_keys=True, default=_json_default)
        return hashlib.sha256(encoded.encode()).hexdigest()


def execute_job(job: SimJob, *, trial_cache: object = SHARED_TRIAL_CACHE):
    """Run one job to completion and return its result record.

    This is a module-level function (not a method) so that
    :class:`concurrent.futures.ProcessPoolExecutor` can pickle it by
    reference and ship only the job data to the worker.
    ``trial_cache`` is forwarded to :func:`build_design`.
    """
    a, b = job.operands()
    if job.design == CPU_DESIGN:
        from repro.accelerators.cpu import CpuMklLikeBaseline

        return CpuMklLikeBaseline().run_layer(a, b, layer_name=job.layer_name)
    if job.design == ENGINE_DESIGN:
        from repro.accelerators.engine import SpmspmEngine

        return SpmspmEngine(job.config, backend=job.engine).run_layer(
            job.dataflow, a, b, layer_name=job.layer_name
        )
    accelerator = build_design(
        job.design, job.config, trial_cache=trial_cache, engine=job.engine
    )
    return accelerator.run_layer(
        a, b, dataflow=job.dataflow, layer_name=job.layer_name
    )


def execute_chunk(
    jobs: list[SimJob], *, trial_cache: object = SHARED_TRIAL_CACHE
) -> tuple[list, BaseException | None]:
    """Run a list of jobs sequentially in this process, in the given order.

    The parallel runner's dispatch unit: jobs over the same operand pair are
    chunked together (see :func:`repro.runtime.cost.job_group_key`) so the
    worker materialises the layer once, the per-pair derived-structure memos
    stay warm, and — with the chunk's most expensive job ordered first — the
    cheaper jobs of the chunk hit the engine results the first one cached.

    Returns ``(outcomes, error)``: the results of the jobs that completed
    (a prefix of ``jobs``) and the exception that stopped the chunk, if any.
    Shipping the completed prefix back alongside the error is what keeps the
    runner's crash-resume contract — every finished result reaches the cache
    — intact when a mid-chunk job blows up in a pool worker.
    """
    outcomes: list = []
    for job in jobs:
        try:
            outcomes.append(execute_job(job, trial_cache=trial_cache))
        except BaseException as error:
            return outcomes, error
    return outcomes, None


# ----------------------------------------------------------------------
# Hashing helpers
# ----------------------------------------------------------------------
#: Per-instance digest memo: the oracle mapper keys up to six candidate jobs
#: over the same operand pair, so each matrix is hashed once, not per job.
#: Keyed by ``id`` (matrices are unhashable); the weakref callback evicts an
#: entry when its matrix is collected, so a recycled id can never alias.
_MATRIX_DIGESTS: dict[int, tuple["weakref.ref[CompressedMatrix]", str]] = {}


def _matrix_digest(matrix: CompressedMatrix) -> str:
    """Content hash of a compressed matrix (layout, shape and stored arrays)."""
    # ``id`` here is only a *memo* key for the content hash below — it never
    # reaches the digest, so the returned key stays process-independent.
    entry = _MATRIX_DIGESTS.get(id(matrix))  # repro: allow[determinism]
    if entry is not None and entry[0]() is matrix:
        return entry[1]
    digest = hashlib.sha256()
    digest.update(matrix.layout.value.encode())
    digest.update(f"{matrix.nrows}x{matrix.ncols}".encode())
    digest.update(matrix.pointers.tobytes())
    digest.update(matrix.indices.tobytes())
    digest.update(matrix.values.tobytes())
    value = digest.hexdigest()
    key = id(matrix)  # repro: allow[determinism]
    _MATRIX_DIGESTS[key] = (
        weakref.ref(matrix, lambda _ref: _MATRIX_DIGESTS.pop(key, None)),
        value,
    )
    return value


@functools.lru_cache(maxsize=64)
def _config_blob(config: AcceleratorConfig) -> str:
    """Canonical JSON of a (frozen, hashable) accelerator configuration."""
    return json.dumps(asdict(config), sort_keys=True)


def _json_default(value: object) -> object:
    """JSON encoder fallback for the enum members inside specs/configs."""
    if isinstance(value, enum.Enum):
        return value.value
    raise TypeError(f"cannot canonicalise {type(value).__name__} for hashing")
