"""Deprecated maintenance CLI, kept as a shim over ``python -m repro cache``.

Usage::

    PYTHONPATH=src python -m repro.runtime stats   # = python -m repro cache stats
    PYTHONPATH=src python -m repro.runtime clear   # = python -m repro cache clear

Both honour ``REPRO_CACHE_DIR``.  New code should call the unified CLI
(:mod:`repro.cli`), which also offers ``cache prune``.
"""

from __future__ import annotations

import sys


def main(argv: list[str]) -> int:
    from repro.cli import main as cli_main

    command = argv[0] if argv else "stats"
    if command not in ("stats", "clear"):
        print(
            f"unknown command {command!r}; expected 'stats' or 'clear'",
            file=sys.stderr,
        )
        return 2
    return cli_main(["cache", command])


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
