"""Maintenance CLI for the on-disk result cache.

Usage::

    PYTHONPATH=src python -m repro.runtime stats   # entry count + size
    PYTHONPATH=src python -m repro.runtime clear   # drop every entry

Both honour ``REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import sys

from repro.runtime.cache import ResultCache


def main(argv: list[str]) -> int:
    command = argv[0] if argv else "stats"
    cache = ResultCache()
    if command == "stats":
        print(f"cache directory : {cache.directory}")
        print(f"entries         : {cache.entry_count()}")
        print(f"size            : {cache.size_bytes() / 1e6:.2f} MB")
        return 0
    if command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
        return 0
    print(f"unknown command {command!r}; expected 'stats' or 'clear'", file=sys.stderr)
    return 2


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
