"""``python -m repro`` — see :mod:`repro.cli` for the subcommands."""

import sys

from repro.cli import main

if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
