"""Timed serving benchmark: warm-path latency and concurrent throughput.

Pre-warms a fresh result cache with the fig12 grid, starts the
:class:`~repro.serve.app.BackgroundServer` over it, and measures:

* **warm in-process latency** — median ``session.figure("fig12")`` render
  time with the grid memoized: the no-HTTP lower bound of the warm path.
* **warm HTTP latency** — median ``GET /v1/figure/fig12`` over one
  keep-alive connection: the same render plus the full server stack.
* **revalidation latency** — median conditional GET answered ``304``
  (the path that touches neither the cache nor the simulator).
* **concurrent throughput** — requests/second with several keep-alive
  client threads hammering the warm figure endpoint at once.
* **saturation behaviour** — with the job pool clamped to a small depth
  ``K``, fire ``4×K`` concurrent *distinct* cold sweeps and keep retrying
  per the ``Retry-After`` answers until all converge: p50/p99 admission
  latency (time to *any* decision — 202, 429 or 503, never a hang), the
  shed/admit split, and the wall-clock to full convergence.

The regression gate is the **overhead ratio** — warm HTTP latency over warm
in-process latency, i.e. how much the serving stack multiplies a warm
query's cost.  Like the engine/runtime benches, the gated quantity is
machine-*relative*, so the check stays meaningful on runners of any
absolute speed.  In ``--check`` mode the bench fails when the measured
ratio exceeds the committed baseline's by more than the tolerance.

Usage::

    PYTHONPATH=src python scripts/bench_serve.py                  # record
    PYTHONPATH=src python scripts/bench_serve.py --check BENCH_serve.json
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import shutil
import statistics
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import Session
from repro.experiments.settings import default_settings
from repro.runtime import BatchRunner, ResultCache
from repro.serve import BackgroundServer

#: Fraction of the committed baseline the measured overhead ratio may not
#: exceed the inverse of: with the default 0.8, a measured ratio up to
#: baseline / 0.8 (25% worse) still passes.  ``REPRO_BENCH_TOLERANCE``
#: widens the floor without a code change, as for the other benches.
REGRESSION_TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.8"))

FIGURE_PATH = "/v1/figure/fig12"


def _median_seconds(fn, iterations: int) -> float:
    samples = []
    for _ in range(iterations):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return statistics.median(samples)


def _http_get(conn: http.client.HTTPConnection, path: str, headers=None) -> bytes:
    conn.request("GET", path, headers=headers or {})
    response = conn.getresponse()
    body = response.read()
    assert response.status in (200, 304), (path, response.status)
    return body


def measure(budget: float, max_layers: int, iterations: int, clients: int) -> dict:
    cache_dir = tempfile.mkdtemp(prefix="bench-serve-cache-")
    try:
        settings = default_settings(
            max_dense_macs=budget, max_layers_per_model=max_layers
        )
        session = Session(
            settings,
            runner=BatchRunner(parallel=False, cache=ResultCache(cache_dir)),
        )
        warm_start = time.perf_counter()
        session.figure("fig12")  # populate the cache + the session memo
        warmup_seconds = time.perf_counter() - warm_start

        inproc = _median_seconds(
            lambda: session.figure("fig12").to_json(), iterations
        )

        with BackgroundServer(session) as server:
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
            try:
                etag_holder: dict[str, str] = {}

                def over_http() -> None:
                    conn.request("GET", FIGURE_PATH)
                    response = conn.getresponse()
                    etag_holder["etag"] = response.headers["ETag"]
                    body = response.read()
                    assert response.status == 200 and body

                http_latency = _median_seconds(over_http, iterations)
                revalidate = _median_seconds(
                    lambda: _http_get(
                        conn,
                        FIGURE_PATH,
                        {"If-None-Match": etag_holder["etag"]},
                    ),
                    iterations,
                )
            finally:
                conn.close()

            requests_per_client = max(1, iterations)
            done = threading.Barrier(clients + 1)

            def client() -> None:
                worker = http.client.HTTPConnection(
                    "127.0.0.1", server.port, timeout=120
                )
                try:
                    for _ in range(requests_per_client):
                        _http_get(worker, FIGURE_PATH)
                finally:
                    worker.close()
                    done.wait()

            start = time.perf_counter()
            for _ in range(clients):
                threading.Thread(target=client, daemon=True).start()
            done.wait()
            elapsed = time.perf_counter() - start

        return {
            "cold_warmup_seconds": round(warmup_seconds, 3),
            "warm_inproc_ms": round(inproc * 1e3, 3),
            "warm_http_ms": round(http_latency * 1e3, 3),
            "revalidate_304_ms": round(revalidate * 1e3, 3),
            "overhead_ratio": round(http_latency / inproc, 3),
            "concurrent_clients": clients,
            "throughput_rps": round(clients * requests_per_client / elapsed, 1),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def _percentile(samples: list[float], fraction: float) -> float:
    ordered = sorted(samples)
    index = min(len(ordered) - 1, int(round(fraction * (len(ordered) - 1))))
    return ordered[index]


def measure_saturation(depth: int) -> dict:
    """Shed-not-deadlock under 4×depth concurrent distinct cold sweeps.

    Runs its own tiny server (5e4-MAC budget, one layer per model) with
    ``REPRO_JOB_POOL_DEPTH`` clamped to ``depth``, so every admission
    decision — accept, rate-shed, pool-shed — is exercised for real.
    Every HTTP exchange (first wave and Retry-After retries alike) is a
    latency sample: the gate of interest is that refusals are *fast*.
    """
    import concurrent.futures

    from repro.serve.quota import AdmissionControl  # noqa: F401  (knob owner)

    cache_dir = tempfile.mkdtemp(prefix="bench-serve-saturation-")
    quota_dir = tempfile.mkdtemp(prefix="bench-serve-quota-")
    saved = {
        key: os.environ.get(key)
        for key in ("REPRO_JOB_POOL_DEPTH", "REPRO_QUOTA_DIR")
    }
    os.environ["REPRO_JOB_POOL_DEPTH"] = str(depth)
    os.environ["REPRO_QUOTA_DIR"] = quota_dir
    try:
        settings = default_settings(max_dense_macs=5e4, max_layers_per_model=1)
        session = Session(
            settings,
            runner=BatchRunner(parallel=False, cache=ResultCache(cache_dir)),
        )
        specs = [
            {"layers": [layer], "designs": [design], "scale": 0.05}
            for layer in ("A2", "R6")
            for design in ("SIGMA-like", "SpArch-like", "GAMMA-like", "CPU-MKL")
        ][: 4 * depth]
        latencies: list[float] = []
        statuses: dict[int, int] = {}
        lock = threading.Lock()

        def exchange(conn, method, path, body=None, headers=None):
            start = time.perf_counter()
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            payload = response.read()
            elapsed = time.perf_counter() - start
            with lock:
                latencies.append(elapsed)
                statuses[response.status] = statuses.get(response.status, 0) + 1
            return response.status, dict(response.getheaders()), payload

        def drive(spec) -> None:
            body = json.dumps(spec).encode()
            conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=120)
            try:
                deadline = time.monotonic() + 300.0
                while True:
                    status, headers, payload = exchange(
                        conn, "POST", "/v1/sweep", body
                    )
                    if status == 200:
                        return
                    if status == 202:
                        url = json.loads(payload)["url"]
                        while True:
                            status, _h, _b = exchange(conn, "GET", url)
                            if status != 202:
                                assert status == 200, status
                                return
                            time.sleep(0.02)
                    assert status in (429, 503), f"unexpected status {status}"
                    assert float(headers["Retry-After"]) >= 1
                    assert time.monotonic() < deadline, "saturated sweep never admitted"
                    time.sleep(min(1.0, float(headers["Retry-After"])))
            finally:
                conn.close()

        with BackgroundServer(session) as server:
            start = time.perf_counter()
            with concurrent.futures.ThreadPoolExecutor(len(specs)) as pool:
                for outcome in pool.map(drive, specs):
                    pass  # re-raise per-spec assertion failures, if any
            converged = time.perf_counter() - start

        return {
            "saturation_pool_depth": depth,
            "saturation_cold_requests": len(specs),
            "saturation_admission_p50_ms": round(
                _percentile(latencies, 0.50) * 1e3, 3
            ),
            "saturation_admission_p99_ms": round(
                _percentile(latencies, 0.99) * 1e3, 3
            ),
            "saturation_shed_503": statuses.get(503, 0),
            "saturation_accepted_202": statuses.get(202, 0),
            "saturation_converge_seconds": round(converged, 3),
        }
    finally:
        for key, value in saved.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        shutil.rmtree(cache_dir, ignore_errors=True)
        shutil.rmtree(quota_dir, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=float, default=2e5,
        help="per-layer dense-MAC budget of the served settings",
    )
    parser.add_argument(
        "--max-layers", type=int, default=3, help="sampled layers per model"
    )
    parser.add_argument(
        "--iterations", type=int, default=30,
        help="requests per latency median (and per client thread)",
    )
    parser.add_argument(
        "--clients", type=int, default=8,
        help="concurrent keep-alive connections in the throughput phase",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="full measurement repeats; the best (lowest-overhead) run is "
        "recorded so one noisy sample cannot fail the regression check",
    )
    parser.add_argument(
        "--pool-depth", type=int, default=2,
        help="job-pool depth K for the saturation phase (4×K concurrent "
        "cold sweeps); 0 skips the phase",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="where to write the measurement record (default: BENCH_serve.json "
        "when recording, bench-serve-measured.json with --check so the "
        "committed baseline is never clobbered)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a committed baseline record and exit non-zero "
        "when the serving overhead ratio regresses past the tolerance",
    )
    args = parser.parse_args(argv)
    output = args.output or (
        "bench-serve-measured.json" if args.check else "BENCH_serve.json"
    )
    baseline = json.loads(Path(args.check).read_text()) if args.check else None

    best: dict | None = None
    for _ in range(max(1, args.repeats)):
        measured = measure(args.budget, args.max_layers, args.iterations, args.clients)
        if best is None or measured["overhead_ratio"] < best["overhead_ratio"]:
            best = measured
    assert best is not None
    record: dict = {
        "figure": "fig12",
        "max_dense_macs": args.budget,
        "max_layers_per_model": args.max_layers,
        "iterations": args.iterations,
        "repeats": args.repeats,
        **best,
    }
    if args.pool_depth > 0:
        record.update(measure_saturation(args.pool_depth))
    printed = [
        "warm_inproc_ms", "warm_http_ms", "revalidate_304_ms",
        "overhead_ratio", "throughput_rps",
    ]
    if args.pool_depth > 0:
        printed += [
            "saturation_admission_p50_ms", "saturation_admission_p99_ms",
            "saturation_shed_503", "saturation_converge_seconds",
        ]
    for key in printed:
        print(f"{key:28s} {record[key]}", file=sys.stderr)

    Path(output).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}", file=sys.stderr)

    if baseline is not None:
        ceiling = baseline["overhead_ratio"] / REGRESSION_TOLERANCE
        if record["overhead_ratio"] > ceiling:
            print(
                f"FAIL: overhead ratio {record['overhead_ratio']}x exceeds "
                f"{ceiling:.2f}x ({1 / REGRESSION_TOLERANCE:.0%} of the "
                f"committed baseline {baseline['overhead_ratio']}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: overhead ratio {record['overhead_ratio']}x <= ceiling "
            f"{ceiling:.2f}x (baseline {baseline['overhead_ratio']}x)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
