"""Timed engine-backend benchmark: fig12 + fig15 under both backends.

Runs the figure suite cold (no result cache, serial executor, fresh process
memos per backend) with the reference and the vectorized engine backend,
records per-backend wall-clock and the speedup in ``BENCH_engine.json``, and
— in ``--check`` mode — fails when the vectorized backend has regressed by
more than 20% against the committed baseline *speedup* (a machine-relative
quantity, so the check is portable across hosts of different absolute speed).

Usage::

    PYTHONPATH=src python scripts/bench_engine.py                   # record
    PYTHONPATH=src python scripts/bench_engine.py --check BENCH_engine.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

#: Backend-speedup fraction below the committed baseline that fails --check.
#: The ratio is machine-*relative* but not perfectly machine-*invariant*
#: (pure-Python and NumPy performance scale differently across interpreter
#: versions and CPUs), so ``REPRO_BENCH_TOLERANCE`` lets an operator widen
#: the floor without a code change if a runner generation proves noisier.
REGRESSION_TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.8"))

SUITE = ("fig12", "fig15")


def run_suite(engine: str, budget: float, max_layers: int) -> float:
    """Cold wall-clock seconds of the figure suite under one backend."""
    from repro.api import Session
    from repro.experiments.settings import default_settings
    from repro.runtime import BatchRunner
    from repro.workloads.layers import _materialize_cached

    # Both backends run in this process; drop the operand memo so neither
    # inherits warmed layers from the other and the comparison stays cold.
    _materialize_cached.cache_clear()
    settings = default_settings(
        max_dense_macs=budget, max_layers_per_model=max_layers, engine=engine
    )
    session = Session(settings, runner=BatchRunner(parallel=False, cache=None))
    start = time.perf_counter()
    for figure in SUITE:
        session.figure(figure)
    return time.perf_counter() - start


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=float, default=2e6,
        help="per-layer dense-MAC budget (default: the benchmark harness's 2e6)",
    )
    parser.add_argument(
        "--max-layers", type=int, default=8,
        help="sampled layers per model (default: the benchmark harness's 8)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="where to write the measurement record (default: "
        "BENCH_engine.json when recording, bench-measured.json with --check "
        "so the committed baseline is never clobbered)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a committed baseline record and exit non-zero "
        "on a >20%% speedup regression",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per backend; the minimum is recorded, so one noisy "
        "sample (shared CI runners!) cannot fail the regression check",
    )
    args = parser.parse_args(argv)
    output = args.output or ("bench-measured.json" if args.check else "BENCH_engine.json")
    # Load the baseline before any writing: with identical paths the check
    # would otherwise compare the fresh measurement against itself.
    baseline = json.loads(Path(args.check).read_text()) if args.check else None

    record = {
        "suite": list(SUITE),
        "max_dense_macs": args.budget,
        "max_layers_per_model": args.max_layers,
        "executor": "serial",
        "cache": "cold (disabled)",
        "repeats": args.repeats,
    }
    for engine in ("reference", "vectorized"):
        seconds = min(
            run_suite(engine, args.budget, args.max_layers)
            for _ in range(max(1, args.repeats))
        )
        record[f"{engine}_seconds"] = round(seconds, 3)
        print(f"{engine:10s} {seconds:8.3f} s (best of {args.repeats})", file=sys.stderr)
    record["speedup"] = round(
        record["reference_seconds"] / record["vectorized_seconds"], 3
    )
    print(f"speedup    {record['speedup']:8.3f} x", file=sys.stderr)

    Path(output).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}", file=sys.stderr)

    if baseline is not None:
        floor = REGRESSION_TOLERANCE * baseline["speedup"]
        if record["speedup"] < floor:
            print(
                f"FAIL: measured speedup {record['speedup']}x is below "
                f"{REGRESSION_TOLERANCE:.0%} of the committed baseline "
                f"{baseline['speedup']}x (floor {floor:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: speedup {record['speedup']}x >= floor {floor:.2f}x "
            f"(baseline {baseline['speedup']}x)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
