"""Timed DSE-driver benchmark: campaign throughput over a 64-point grid.

Registers a bench-only synthetic workload set (8 transformer/GNN shapes),
crosses it with 8 built-in design points and measures the campaign twice
over one result cache:

* **cold** — every simulation executes (engine-dominated),
* **warm** — every simulation answers from the cache, so the measured time
  is pure DSE-driver overhead: spec compilation, campaign/report keying,
  the cache scan and the Pareto collation.

Both are recorded as points/second in ``BENCH_dse.json``.  The regression
gate is the **warm speedup** (warm over cold throughput): a machine-relative
quantity, so the check travels across hosts of different absolute speed.
A driver regression (slower keying, compilation or collation) drags warm
throughput down while barely moving the engine-bound cold number, which is
exactly what collapses the ratio.  ``--check`` fails when the measured
speedup drops below 80% of the committed baseline's.

Usage::

    PYTHONPATH=src python scripts/bench_dse.py                 # record
    PYTHONPATH=src python scripts/bench_dse.py --check BENCH_dse.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import Session  # noqa: E402
from repro.dse.designs import default_design_points  # noqa: E402
from repro.dse.explore import DseSpec  # noqa: E402
from repro.dse.workloads import (  # noqa: E402
    gnn_adjacency,
    register_workload,
    transformer_pruning,
)
from repro.experiments.settings import default_settings  # noqa: E402
from repro.runtime import BatchRunner, ResultCache  # noqa: E402

#: Speedup fraction below the committed baseline that fails --check;
#: ``REPRO_BENCH_TOLERANCE`` widens the floor without a code change, as for
#: the other benches.
REGRESSION_TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.8"))

#: Grid edge sizes: 8 workloads x 8 design points = 64 campaign points.
NUM_WORKLOADS = 8
NUM_DESIGNS = 8


def bench_spec() -> DseSpec:
    """The 64-point campaign: bench-only workloads x built-in designs.

    The workload set spans both synthetic families with varied shapes and
    sparsities so compile/keying cost is representative; registration is
    process-local and idempotent (equal re-registration is a no-op).
    """
    names = []
    for index in range(NUM_WORKLOADS // 2):
        workload = transformer_pruning(
            f"bench-xf-{index}",
            seq_len=128 + 64 * index,
            weight_sparsity=0.70 + 0.05 * index,
        )
        names.append(register_workload(workload).name)
    for index in range(NUM_WORKLOADS // 2):
        workload = gnn_adjacency(
            f"bench-gnn-{index}",
            nodes=1024 + 512 * index,
            avg_degree=4.0 + 2.0 * index,
        )
        names.append(register_workload(workload).name)
    designs = default_design_points()[:NUM_DESIGNS]
    return DseSpec(workloads=tuple(names), designs=designs)


def measure(budget: float, workers: int) -> dict[str, float]:
    """Cold + warm campaign throughput (points/second) over one fresh cache."""
    spec = bench_spec()
    points = len(spec.workloads) * len(spec.designs)
    settings = default_settings(max_dense_macs=budget, max_layers_per_model=1)
    directory = tempfile.mkdtemp(prefix="bench-dse-cache-")
    try:
        timings: dict[str, float] = {}
        # One cold pass, then the warm replay timed as the best of three:
        # the warm window is milliseconds, so a single stolen timeslice
        # would otherwise dominate the ratio the regression gate watches.
        for mode, rounds in (("cold", 1), ("warm", 3)):
            seconds = float("inf")
            for _ in range(rounds):
                session = Session(
                    settings,
                    runner=BatchRunner(
                        parallel=True, max_workers=workers, cache=ResultCache(directory)
                    ),
                )
                start = time.perf_counter()
                session.dse(spec)
                seconds = min(seconds, time.perf_counter() - start)
                executed = session.runner.stats.executed
                assert executed == (points if mode == "cold" else 0), (mode, executed)
            timings[mode] = seconds
        return {
            "points": points,
            "cold_points_per_second": round(points / timings["cold"], 2),
            "warm_points_per_second": round(points / timings["warm"], 2),
            "warm_speedup": round(timings["cold"] / timings["warm"], 3),
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=float, default=5e4,
        help="per-layer dense-MAC budget (default 5e4: the micro scale that "
        "keeps 64 cold simulations inside a CI minute)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width (default: the committed record's width in "
        "--check mode so the speedup compares like for like, else "
        "os.cpu_count(), at least 2)",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="measurement repeats; the best warm speedup is recorded so one "
        "noisy sample (shared CI runners!) cannot fail the regression check",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="where to write the measurement record (default: BENCH_dse.json "
        "when recording, bench-measured.json with --check so the committed "
        "baseline is never clobbered)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a committed baseline record and exit non-zero "
        "on a >20%% warm-speedup regression",
    )
    args = parser.parse_args(argv)
    output = args.output or ("bench-measured.json" if args.check else "BENCH_dse.json")
    baseline = json.loads(Path(args.check).read_text()) if args.check else None
    workers = args.workers
    if workers is None and baseline is not None:
        # Measure at the committed record's width: cold throughput scales
        # with the pool, so a wider host would otherwise shrink the ratio.
        workers = int(baseline.get("workers", 0)) or None
    if workers is None:
        workers = max(2, os.cpu_count() or 1)

    best: dict[str, float] | None = None
    for _ in range(max(1, args.repeats)):
        measured = measure(args.budget, workers)
        if best is None or measured["warm_speedup"] > best["warm_speedup"]:
            best = measured
    assert best is not None
    record: dict[str, object] = {
        "max_dense_macs": args.budget,
        "workers": workers,
        "repeats": args.repeats,
        **best,
    }
    for key in ("points", "cold_points_per_second", "warm_points_per_second",
                "warm_speedup"):
        print(f"{key:24s} {record[key]}", file=sys.stderr)

    Path(output).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}", file=sys.stderr)

    if baseline is not None:
        floor = REGRESSION_TOLERANCE * baseline["warm_speedup"]
        if record["warm_speedup"] < floor:
            print(
                f"FAIL: measured warm speedup {record['warm_speedup']}x is "
                f"below {REGRESSION_TOLERANCE:.0%} of the committed baseline "
                f"{baseline['warm_speedup']}x (floor {floor:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: warm speedup {record['warm_speedup']}x >= floor {floor:.2f}x "
            f"(baseline {baseline['warm_speedup']}x)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
