"""Timed fabric benchmark: remote-worker scaling and warm-path overhead.

Starts a coordinator with its HTTP listener on an ephemeral port, spawns
real ``python -m repro worker`` subprocesses against it, and measures one
cold sweep grid end to end through ``REPRO_POOL=remote``:

* **cold 1-worker / 2-worker wall-clock** — the same grid executed by one
  and by two worker processes, each measurement from fully cold caches
  (coordinator and workers alike);
* **scaling speedup** — cold 1-worker time over cold 2-worker time: how
  much of the second worker the fabric actually converts into throughput
  (lease bookkeeping, claim polling and upload verification all tax it);
* **warm wall-clock** — the same sweep re-run against the now-populated
  coordinator cache: zero executions, no worker round-trips.

Every run also asserts bit-equivalence: the 1-worker, 2-worker and warm
result JSON must be byte-identical.

The regression gate is the **scaling speedup** — a machine-relative ratio
(both measurements run on the same box), so the check stays meaningful on
runners of any absolute speed.  In ``--check`` mode the bench fails when
the measured speedup drops below the tolerance fraction (default 80%,
i.e. a >20% regression) of the committed baseline's.  On a single-core
host the speedup sits *below* 1.0 — two CPU-bound worker processes can
only oversubscribe one core — which is still a valid baseline: the ratio
is what must not regress, and the record carries ``host_cpus`` so a
reader can interpret the absolute value.

Usage::

    PYTHONPATH=src python scripts/bench_fabric.py                   # record
    PYTHONPATH=src python scripts/bench_fabric.py --check BENCH_fabric.json
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

from repro.api import Session, SweepSpec
from repro.experiments.settings import default_settings
from repro.fabric import Coordinator, WorkQueue, reset_shared_fabric, set_shared_coordinator
from repro.runtime import BatchRunner, ResultCache

#: Fraction of the committed baseline the measured scaling speedup may not
#: drop below: with the default 0.8, a speedup regression of more than 20%
#: fails the check.  ``REPRO_BENCH_TOLERANCE`` widens the floor without a
#: code change, as for the other benches.
REGRESSION_TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.8"))

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The benchmark grid: 24 jobs the cost planner packs into several chunks,
#: so two workers genuinely split the work instead of alternating on one
#: item at a time.
BENCH_LAYERS = ("R6", "A2", "SQ5", "V0", "R4", "V7")


def _spawn_worker(url: str, cache_dir: Path, index: int) -> subprocess.Popen:
    """One real ``python -m repro worker`` subprocess, waited until ready."""
    process = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker", url,
            "--id", f"bench-{index}",
            "--cache-dir", str(cache_dir),
            "--poll-seconds", "0.02",
        ],
        cwd=REPO_ROOT,
        env={**os.environ, "PYTHONPATH": str(REPO_ROOT / "src")},
        stdout=subprocess.DEVNULL,
        stderr=subprocess.PIPE,
        text=True,
    )
    ready = process.stderr.readline()  # the "<id> polling <url>" banner
    if "polling" not in ready:
        process.terminate()
        raise RuntimeError(f"worker {index} failed to start: {ready!r}")
    # Keep draining so a chatty worker can never block on a full pipe.
    threading.Thread(
        target=lambda: process.stderr.read(), daemon=True
    ).start()
    return process


def _measure_once(num_workers: int, settings, spec: SweepSpec) -> dict:
    """One fully cold sweep through ``num_workers`` worker subprocesses."""
    with tempfile.TemporaryDirectory(prefix="bench-fabric-") as tmp_name:
        tmp = Path(tmp_name)
        coordinator_dir = tmp / "coordinator"
        coordinator = Coordinator(
            WorkQueue(lease_seconds=60.0), cache=ResultCache(coordinator_dir)
        )
        set_shared_coordinator(coordinator)
        url = coordinator.ensure_listener(host="127.0.0.1", port=0)
        workers = [
            _spawn_worker(url, tmp / f"worker-{index}", index)
            for index in range(num_workers)
        ]
        try:
            runner = BatchRunner(
                parallel=True,
                max_workers=8,
                pool_mode="remote",
                cache=ResultCache(coordinator_dir),
            )
            session = Session(settings, runner=runner)
            start = time.perf_counter()
            result = session.sweep(spec)
            cold_seconds = time.perf_counter() - start

            # Warm pass: the coordinator cache answers everything; no chunk
            # may reach the queue again.
            warm_runner = BatchRunner(
                parallel=True,
                max_workers=8,
                pool_mode="remote",
                cache=ResultCache(coordinator_dir),
            )
            start = time.perf_counter()
            warm = Session(settings, runner=warm_runner).sweep(spec)
            warm_seconds = time.perf_counter() - start
            assert warm_runner.stats.executed == 0, "warm pass re-executed jobs"
            assert warm.to_json() == result.to_json(), "warm bytes diverged"
            return {
                "cold_seconds": cold_seconds,
                "warm_seconds": warm_seconds,
                "executed": runner.stats.executed,
                "json": result.to_json(),
            }
        finally:
            for process in workers:
                process.terminate()
            for process in workers:
                process.wait(timeout=60)
            reset_shared_fabric()


def measure(budget: float, max_layers: int, scale: float) -> dict:
    settings = default_settings(
        max_dense_macs=budget, max_layers_per_model=max_layers
    )
    spec = SweepSpec(layers=BENCH_LAYERS, scale=scale)
    jobs, _meta = spec.compile(settings)

    single = _measure_once(1, settings, spec)
    double = _measure_once(2, settings, spec)
    assert single["json"] == double["json"], "worker count changed the bytes"
    return {
        "jobs": len(jobs),
        "cold_1worker_seconds": round(single["cold_seconds"], 3),
        "cold_2worker_seconds": round(double["cold_seconds"], 3),
        "speedup_2v1": round(single["cold_seconds"] / double["cold_seconds"], 3),
        "warm_seconds": round(double["warm_seconds"], 3),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=float, default=1e6,
        help="per-layer dense-MAC budget of the benchmark settings",
    )
    parser.add_argument(
        "--max-layers", type=int, default=2, help="sampled layers per model"
    )
    parser.add_argument(
        "--scale", type=float, default=0.3,
        help="operand downscale factor of the benchmark grid",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="full measurement repeats; the best (highest-speedup) run is "
        "recorded so one noisy sample cannot fail the regression check",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="where to write the measurement record (default: BENCH_fabric.json "
        "when recording, bench-fabric-measured.json with --check so the "
        "committed baseline is never clobbered)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a committed baseline record and exit non-zero "
        "when the 2-worker scaling speedup regresses past the tolerance",
    )
    args = parser.parse_args(argv)
    output = args.output or (
        "bench-fabric-measured.json" if args.check else "BENCH_fabric.json"
    )
    baseline = json.loads(Path(args.check).read_text()) if args.check else None

    best: dict | None = None
    for _ in range(max(1, args.repeats)):
        measured = measure(args.budget, args.max_layers, args.scale)
        if best is None or measured["speedup_2v1"] > best["speedup_2v1"]:
            best = measured
    assert best is not None
    record: dict = {
        "layers": list(BENCH_LAYERS),
        "scale": args.scale,
        "max_dense_macs": args.budget,
        "max_layers_per_model": args.max_layers,
        "repeats": args.repeats,
        "host_cpus": os.cpu_count(),
        **best,
    }
    for key in (
        "jobs", "cold_1worker_seconds", "cold_2worker_seconds",
        "speedup_2v1", "warm_seconds",
    ):
        print(f"{key:22s} {record[key]}", file=sys.stderr)

    Path(output).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}", file=sys.stderr)

    if baseline is not None:
        floor = baseline["speedup_2v1"] * REGRESSION_TOLERANCE
        if record["speedup_2v1"] < floor:
            print(
                f"FAIL: scaling speedup {record['speedup_2v1']}x is below "
                f"{floor:.2f}x ({REGRESSION_TOLERANCE:.0%} of the committed "
                f"baseline {baseline['speedup_2v1']}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: scaling speedup {record['speedup_2v1']}x >= floor "
            f"{floor:.2f}x (baseline {baseline['speedup_2v1']}x)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
