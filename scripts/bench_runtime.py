"""Timed runtime benchmark: the streaming persistent-pool runtime vs legacy.

Measures the cold parallel fig12+fig15 wall-clock twice, in fresh
subprocesses with fresh result caches:

* **baseline** — the pre-streaming runtime reconstructed through its compat
  knobs: one ephemeral process pool per batch (``REPRO_POOL=ephemeral``),
  submission-order static chunking (``REPRO_SCHED=fifo``) and no
  engine-result sharing between designs (``REPRO_SHARE_ENGINE=0``).
* **streaming** — the defaults: persistent worker pool, cost-aware
  longest-first grouped scheduling, streaming cache writes and shared
  content-addressed engine runs.

It also measures cache-scan throughput (keys/second) of the batched
:meth:`ResultCache.get_many` pre-dispatch scan against the legacy per-key
``get`` loop over a half-warm key set.

Records everything in ``BENCH_runtime.json``; in ``--check`` mode it fails
when the measured wall-clock speedup drops below 80% of the committed
baseline *speedup* (a machine-relative quantity, so the check is portable
across hosts of different absolute speed).

Usage::

    PYTHONPATH=src python scripts/bench_runtime.py                    # record
    PYTHONPATH=src python scripts/bench_runtime.py --check BENCH_runtime.json
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

#: Speedup fraction below the committed baseline that fails --check.  The
#: ratio is machine-*relative* but not perfectly machine-*invariant* (core
#: counts change how much the scheduler can matter), so
#: ``REPRO_BENCH_TOLERANCE`` lets an operator widen the floor without a code
#: change if a runner generation proves noisier.
REGRESSION_TOLERANCE = float(os.environ.get("REPRO_BENCH_TOLERANCE", "0.8"))

SUITE = ("fig12", "fig15")

#: Environment overrides reconstructing the pre-streaming runtime.
BASELINE_ENV = {
    "REPRO_POOL": "ephemeral",
    "REPRO_SCHED": "fifo",
    "REPRO_SHARE_ENGINE": "0",
}

_CHILD_CODE = """
import sys, time
from repro.api import Session
from repro.experiments.settings import default_settings
from repro.runtime import BatchRunner, ResultCache

budget, max_layers, workers, cache_dir = (
    float(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3]), sys.argv[4]
)
settings = default_settings(max_dense_macs=budget, max_layers_per_model=max_layers)
session = Session(
    settings,
    runner=BatchRunner(parallel=True, max_workers=workers, cache=ResultCache(cache_dir)),
)
start = time.perf_counter()
for figure in ("fig12", "fig15"):
    session.figure(figure)
print(time.perf_counter() - start)
"""


def run_suite(
    env_overrides: dict[str, str], budget: float, max_layers: int, workers: int
) -> float:
    """Cold wall-clock seconds of the figure suite in a fresh subprocess.

    A subprocess per measurement keeps every process-wide amortisation the
    persistent runtime relies on (worker pool, materialisation memos) inside
    the measured window, and a fresh cache directory keeps the run cold.
    """
    env = dict(os.environ)
    env.pop("REPRO_POOL", None)
    env.pop("REPRO_SCHED", None)
    env.pop("REPRO_SHARE_ENGINE", None)
    env.update(env_overrides)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in ("src", env.get("PYTHONPATH", "")) if p
    )
    cache_dir = tempfile.mkdtemp(prefix="bench-runtime-cache-")
    try:
        proc = subprocess.run(
            [
                sys.executable, "-c", _CHILD_CODE,
                str(budget), str(max_layers), str(workers), cache_dir,
            ],
            capture_output=True,
            text=True,
            env=env,
        )
        if proc.returncode != 0:
            # Surface the child's traceback; CalledProcessError alone would
            # swallow it and leave a CI failure undiagnosable.
            sys.stderr.write(proc.stderr)
            raise subprocess.CalledProcessError(
                proc.returncode, proc.args, output=proc.stdout, stderr=proc.stderr
            )
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return float(proc.stdout.strip().splitlines()[-1])


def bench_cache_scan(num_entries: int = 2048) -> dict[str, float]:
    """Keys/second of the batched hit scan vs the legacy per-key loop.

    Half the probed keys exist (reads) and half do not (pure scan cost) —
    the profile of a partially warm sweep.  Fresh cache instances per
    measurement keep the in-memory blob level cold.
    """
    from repro.runtime import ResultCache

    directory = tempfile.mkdtemp(prefix="bench-runtime-scan-")
    try:
        cache = ResultCache(directory)
        present = [f"{i:064x}" for i in range(num_entries)]
        absent = [f"{i + num_entries:064x}" for i in range(num_entries)]
        for key in present:
            cache.put(key, {"cycles": float(len(key))})
        probe = present + absent

        start = time.perf_counter()
        found = ResultCache(directory).get_many(probe)
        batched_seconds = time.perf_counter() - start
        assert len(found) == num_entries

        legacy = ResultCache(directory)
        from repro.runtime import MISS

        start = time.perf_counter()
        hits = sum(legacy.get(key) is not MISS for key in probe)
        per_key_seconds = time.perf_counter() - start
        assert hits == num_entries
        return {
            "probed_keys": len(probe),
            "batched_keys_per_second": round(len(probe) / batched_seconds),
            "per_key_keys_per_second": round(len(probe) / per_key_seconds),
        }
    finally:
        shutil.rmtree(directory, ignore_errors=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--budget", type=float, default=2e6,
        help="per-layer dense-MAC budget (default: the benchmark harness's 2e6)",
    )
    parser.add_argument(
        "--max-layers", type=int, default=8,
        help="sampled layers per model (default: the benchmark harness's 8)",
    )
    parser.add_argument(
        "--workers", type=int, default=None,
        help="process-pool width for both modes (default: the committed "
        "record's width in --check mode so ratios compare like for like, "
        "else os.cpu_count(), at least 2 so the parallel path is exercised)",
    )
    parser.add_argument(
        "-o", "--output", default=None,
        help="where to write the measurement record (default: "
        "BENCH_runtime.json when recording, bench-measured.json with --check "
        "so the committed baseline is never clobbered)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE", default=None,
        help="compare against a committed baseline record and exit non-zero "
        "on a >20%% speedup regression",
    )
    parser.add_argument(
        "--repeats", type=int, default=2,
        help="timed runs per mode; the minimum is recorded, so one noisy "
        "sample (shared CI runners!) cannot fail the regression check",
    )
    args = parser.parse_args(argv)
    output = args.output or (
        "bench-measured.json" if args.check else "BENCH_runtime.json"
    )
    # Load the baseline before any writing: with identical paths the check
    # would otherwise compare the fresh measurement against itself.
    baseline = json.loads(Path(args.check).read_text()) if args.check else None
    workers = args.workers
    if workers is None and baseline is not None:
        # Measure at the committed record's width so the ratios compare
        # like for like.
        workers = int(baseline.get("workers", 0)) or None
    if workers is None:
        workers = max(2, os.cpu_count() or 1)

    record: dict[str, object] = {
        "suite": list(SUITE),
        "max_dense_macs": args.budget,
        "max_layers_per_model": args.max_layers,
        "workers": workers,
        "cache": "cold (fresh directory per run)",
        "repeats": args.repeats,
        "baseline_env": dict(BASELINE_ENV),
    }
    for mode, overrides in (("baseline", BASELINE_ENV), ("streaming", {})):
        seconds = min(
            run_suite(overrides, args.budget, args.max_layers, workers)
            for _ in range(max(1, args.repeats))
        )
        record[f"{mode}_seconds"] = round(seconds, 3)
        print(f"{mode:10s} {seconds:8.3f} s (best of {args.repeats})", file=sys.stderr)
    record["speedup"] = round(record["baseline_seconds"] / record["streaming_seconds"], 3)
    print(f"speedup    {record['speedup']:8.3f} x", file=sys.stderr)
    record["cache_scan"] = bench_cache_scan()
    print(f"cache scan {record['cache_scan']}", file=sys.stderr)

    Path(output).write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    print(f"wrote {output}", file=sys.stderr)

    if baseline is not None:
        floor = REGRESSION_TOLERANCE * baseline["speedup"]
        if record["speedup"] < floor:
            print(
                f"FAIL: measured speedup {record['speedup']}x is below "
                f"{REGRESSION_TOLERANCE:.0%} of the committed baseline "
                f"{baseline['speedup']}x (floor {floor:.2f}x)",
                file=sys.stderr,
            )
            return 1
        print(
            f"OK: speedup {record['speedup']}x >= floor {floor:.2f}x "
            f"(baseline {baseline['speedup']}x)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
